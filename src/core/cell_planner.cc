#include "core/cell_planner.h"

#include <unordered_map>
#include <utility>

#include "core/candidate_gen.h"
#include "core/scan_cell.h"

namespace flipper {

CellPlan CellPlanner::PlanRow1(int k, const Cell* prev_in_row) const {
  CellPlan plan;
  plan.h = 1;
  plan.k = k;
  if (k == 2) {
    plan.strategy = CellStrategy::kPairs;
    plan.candidates = GeneratePairs(freq_items_[1]);
    plan.truncated =
        plan.candidates.size() > config_.max_candidates_per_cell;
  } else {
    plan.strategy = CellStrategy::kAprioriJoin;
    std::vector<Itemset> prev_frequent = prev_in_row->Select(
        [](const ItemsetRecord& r) { return r.frequent; });
    plan.candidates =
        AprioriJoin(prev_frequent, *prev_in_row,
                    config_.max_candidates_per_cell, &plan.truncated);
  }
  return plan;
}

CellPlan CellPlanner::PlanVertical(
    int h, int k, const Cell& parent_cell,
    const std::unordered_set<ItemId>& banned) const {
  CellPlan plan;
  plan.h = h;
  plan.k = k;
  plan.ban_version = banned.size();
  const uint32_t min_count = config_.MinCount(h, num_txns_);
  auto child_ok = [&](ItemId child) {
    if (views_.ItemSupport(h, child) < min_count) return false;
    return banned.find(child) == banned.end();
  };
  std::vector<Itemset> parents = parent_cell.Select(
      [this](const ItemsetRecord& r) { return ParentEligible(config_, r); });

  // Strategy selection: the cartesian children product can vastly
  // exceed the number of k-subsets actually present in the data
  // (every absent combination has support 0 and can never be
  // frequent). Estimate both and take the cheaper route.
  double cartesian_total = 0.0;
  std::unordered_map<ItemId, double> eligible_children;
  for (const Itemset& parent : parents) {
    double product = 1.0;
    for (ItemId node : parent) {
      auto [it, inserted] = eligible_children.try_emplace(node, 0.0);
      if (inserted) {
        double count = 0.0;
        if (tax_.IsLeaf(node) && tax_.LevelOf(node) < h) {
          count = child_ok(node) ? 1.0 : 0.0;
        } else {
          for (ItemId child : tax_.ChildrenOf(node)) {
            if (child_ok(child)) count += 1.0;
          }
        }
        it->second = count;
      }
      product *= it->second;
      if (product == 0.0) break;
    }
    cartesian_total += product;
    if (cartesian_total > 1e15) break;
  }
  if (config_.enable_scan_cells && !parents.empty() &&
      cartesian_total > 65536) {
    // The scan cell enumerates k-subsets of *filtered* transactions
    // (participating items only), so the raw width histogram
    // overestimates its cost. Scale widths by the participating
    // fraction of the level's occurring vocabulary — the prefilter /
    // ok[] hit rate — before the C(w, k) estimate. Strategy selection
    // never changes mined output (both routes are exact), only cost.
    size_t vocab = 0;
    size_t live = 0;
    for (ItemId node : tax_.NodesAtLevel(h)) {
      if (views_.ItemSupport(h, node) == 0) continue;
      ++vocab;
      if (child_ok(node)) ++live;
    }
    const double live_fraction =
        vocab > 0
            ? static_cast<double>(live) / static_cast<double>(vocab)
            : 1.0;
    if (ScanEnumerationCost(views_, h, k, live_fraction) <
        cartesian_total) {
      plan.strategy = CellStrategy::kScan;
      return plan;
    }
  }

  plan.strategy = CellStrategy::kVerticalExpand;
  for (const Itemset& parent : parents) {
    VerticalExpand(parent, tax_, h, child_ok, &plan.candidates,
                   config_.max_candidates_per_cell, &plan.truncated);
    if (plan.truncated) break;
  }
  return plan;
}

}  // namespace flipper
