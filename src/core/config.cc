#include "core/config.h"

#include <cmath>

namespace flipper {

const char* CounterKindToString(CounterKind kind) {
  switch (kind) {
    case CounterKind::kHorizontal:
      return "horizontal";
    case CounterKind::kVertical:
      return "vertical";
  }
  return "?";
}

std::string PruningOptions::ToString() const {
  if (!flipping && !tpg && !sibp) return "support-only";
  std::string out = "flipping";
  if (tpg) out += "+tpg";
  if (sibp) out += "+sibp";
  return out;
}

Status MiningConfig::Validate() const {
  if (!(gamma > epsilon)) {
    return Status::InvalidArgument(
        "gamma must be strictly greater than epsilon (gamma=" +
        std::to_string(gamma) + ", epsilon=" + std::to_string(epsilon) +
        ")");
  }
  if (gamma <= 0.0 || gamma > 1.0) {
    return Status::InvalidArgument("gamma must be in (0, 1]");
  }
  if (epsilon < 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in [0, 1)");
  }
  if (min_support.empty()) {
    return Status::InvalidArgument(
        "at least one per-level minimum support is required");
  }
  for (size_t i = 0; i < min_support.size(); ++i) {
    if (min_support[i] < 0.0 || min_support[i] > 1.0) {
      return Status::InvalidArgument(
          "min_support[" + std::to_string(i) + "] outside [0, 1]");
    }
    if (i > 0 && min_support[i] > min_support[i - 1]) {
      return Status::InvalidArgument(
          "per-level minimum supports must be non-increasing "
          "(theta_" + std::to_string(i) + " < theta_" +
          std::to_string(i + 1) + ")");
    }
  }
  if (max_itemset_size < 0) {
    return Status::InvalidArgument("max_itemset_size must be >= 0");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 0 (0 = all hardware threads)");
  }
  return Status::OK();
}

uint32_t MiningConfig::MinCount(int level, uint32_t num_txns) const {
  const size_t idx =
      std::min(static_cast<size_t>(level - 1), min_support.size() - 1);
  const double fraction = min_support[idx];
  const double count = std::ceil(fraction * static_cast<double>(num_txns));
  return count < 1.0 ? 1u : static_cast<uint32_t>(count);
}

}  // namespace flipper
