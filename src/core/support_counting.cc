#include "core/support_counting.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <memory>
#include <string>
#include <unordered_set>

#include "common/trace.h"
#include "core/candidate_trie.h"

namespace flipper {
namespace {

constexpr size_t kMinTxnsPerShard = 512;

/// Candidates per shard below which sharding the intersection loop is
/// not worth the task dispatch and per-shard scratch.
constexpr size_t kMinCandidatesPerShard = 64;

/// Transactions between cancellation polls in the horizontal scan
/// loops (and candidates between polls in the vertical loops). Coarse
/// enough that an un-fired token costs one predictable branch per
/// item, fine enough that a fired token stops a shard within
/// microseconds.
constexpr size_t kCancelCheckStride = 512;
constexpr size_t kCancelCheckStrideVertical = 64;

class HorizontalCounter final : public SupportCounter {
 public:
  HorizontalCounter(ThreadPool* pool, const CounterOptions& options)
      : pool_(pool), options_(options) {}

  Status Count(const LevelViews* views, int h,
               std::span<const Itemset> candidates,
               std::vector<uint32_t>* supports) override {
    supports->resize(candidates.size());
    if (candidates.empty()) return Status::OK();
    const LevelData& level = views->Level(h);
    const SegmentCatalog* catalog =
        options_.enable_segment_skipping
            ? UsableCatalog(level.catalog.get(), level.db)
            : nullptr;
    CountBatchOptions batch_options;
    batch_options.trie = options_.trie;
    batch_options.scratch = &scratch_;
    batch_options.txns_prefiltered = &txns_prefiltered_;
    batch_options.cancel = options_.cancel;

    // The trie requires uniform arity. The mining engines always send
    // one arity, so the common path feeds the candidate span straight
    // to the trie with no batch copy; mixed batches group by size.
    const bool uniform =
        std::all_of(candidates.begin(), candidates.end(),
                    [&](const Itemset& c) {
                      return c.size() == candidates.front().size();
                    });
    if (uniform) {
      CountBatchWithTrie(level.db, candidates, pool_, *supports, catalog,
                         &segments_skipped_, batch_options);
      ++num_db_scans_;
      return Status::OK();
    }

    std::array<std::vector<uint32_t>, kMaxItemsetSize + 1> by_size;
    for (size_t i = 0; i < candidates.size(); ++i) {
      by_size[static_cast<size_t>(candidates[i].size())].push_back(
          static_cast<uint32_t>(i));
    }
    std::vector<Itemset> batch;
    std::vector<uint32_t> batch_supports;
    for (const auto& group : by_size) {
      if (group.empty()) continue;
      batch.clear();
      batch.reserve(group.size());
      for (uint32_t idx : group) batch.push_back(candidates[idx]);
      batch_supports.resize(batch.size());
      CountBatchWithTrie(level.db, batch, pool_, batch_supports, catalog,
                         &segments_skipped_, batch_options);
      ++num_db_scans_;
      for (size_t j = 0; j < group.size(); ++j) {
        (*supports)[group[j]] = batch_supports[j];
      }
    }
    return Status::OK();
  }

  CountFuture StartCount(const LevelViews* views, int h,
                         std::span<const Itemset> candidates,
                         std::vector<uint32_t>* supports) override {
    supports->resize(candidates.size());
    if (candidates.empty()) return CountFuture(Status::OK());
    const bool uniform =
        std::all_of(candidates.begin(), candidates.end(),
                    [&](const Itemset& c) {
                      return c.size() == candidates.front().size();
                    });
    if (pool_ == nullptr || !uniform) {
      // Mixed-arity batches (never sent by the mining engines) and
      // pool-less counters take the synchronous path.
      return CountFuture(Count(views, h, candidates, supports));
    }
    const LevelData& level = views->Level(h);
    const TransactionDb& db = level.db;
    ++num_db_scans_;

    // Segment-skip flags are computed on the driver thread before the
    // shards launch (the accounting stays single-threaded; the shards
    // only read the flags).
    const SegmentCatalog* catalog =
        options_.enable_segment_skipping
            ? UsableCatalog(level.catalog.get(), db)
            : nullptr;
    std::vector<char> scan_flags;
    std::span<const uint64_t> boundaries;
    if (catalog != nullptr) {
      scan_flags =
          SegmentScanFlags(*catalog, candidates, &segments_skipped_);
      boundaries = catalog->boundaries();
    }

    // Shared shard state: the trie is built here (read-only for the
    // shards), each shard owns one private counter buffer and one
    // counting scratch. The buffers are drawn from the counter's
    // pooled scratch and returned by the finalize step, so
    // consecutive counts of a row rebuild into warm arenas instead of
    // allocating. Both moves run on the caller thread (StartCount /
    // Join), so the pooling itself needs no synchronization; the
    // workers only ever touch the state while SubmitBatch..Wait
    // brackets them.
    struct ScanState {
      CandidateTrie trie;
      std::vector<std::vector<uint32_t>> partial;
      std::vector<CandidateTrie::CountScratch> per_shard;
      std::vector<char> scan_flags;
    };
    auto state = std::make_shared<ScanState>();
    state->trie = std::move(scratch_.trie);
    state->partial = std::move(scratch_.partial);
    state->per_shard = std::move(scratch_.per_shard);
    {
      FLIPPER_TRACE_SPAN_HK("trie_build", "detail", h,
                            static_cast<int>(candidates.front().size()));
      state->trie.Build(candidates, options_.trie);
    }
    state->scan_flags = std::move(scan_flags);
    const int num_shards = ShardCount(db.size(), pool_, kMinTxnsPerShard);
    if (state->partial.size() < static_cast<size_t>(num_shards)) {
      state->partial.resize(static_cast<size_t>(num_shards));
    }
    if (state->per_shard.size() < static_cast<size_t>(num_shards)) {
      state->per_shard.resize(static_cast<size_t>(num_shards));
    }
    for (int s = 0; s < num_shards; ++s) {
      state->per_shard[static_cast<size_t>(s)].Reserve(db.max_width());
    }

    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<size_t>(num_shards));
    const size_t num_candidates = candidates.size();
    const int arity = static_cast<int>(candidates.front().size());
    const CancelToken* cancel = options_.cancel;
    for (int s = 0; s < num_shards; ++s) {
      const auto [lo, hi] = ShardRange(0, db.size(), num_shards, s);
      tasks.push_back([state, &db, s, lo = lo, hi = hi, boundaries,
                       num_candidates, h, arity, cancel] {
        FLIPPER_TRACE_SPAN_HK("count_shard", "task", h, arity);
        auto& counts = state->partial[static_cast<size_t>(s)];
        auto& cs = state->per_shard[static_cast<size_t>(s)];
        counts.assign(num_candidates, 0);
        cs.txns_prefiltered = 0;
        // Cancellation poll every kCancelCheckStride transactions; a
        // fired token abandons the shard (partial counts — the driver
        // re-checks the token before ever evaluating supports).
        size_t until_check = kCancelCheckStride;
        bool bail = false;
        ForEachScannableRange(
            boundaries, state->scan_flags, lo, hi,
            [&](size_t range_lo, size_t range_hi) {
              if (bail) return;
              for (size_t t = range_lo; t < range_hi; ++t) {
                if (cancel != nullptr && --until_check == 0) {
                  until_check = kCancelCheckStride;
                  if (cancel->Fired()) {
                    bail = true;
                    return;
                  }
                }
                state->trie.CountTransaction(
                    db.Get(static_cast<TxnId>(t)), counts, &cs);
              }
            });
        assert(cs.grow_events == 0 &&
               "per-transaction allocation in the counting hot loop");
      });
    }
    ThreadPool::Completion completion = pool_->SubmitBatch(std::move(tasks));
    return CountFuture(
        std::move(completion), [this, state, supports, num_shards, h, arity] {
          FLIPPER_TRACE_SPAN_HK("shard_merge", "detail", h, arity);
          std::fill(supports->begin(), supports->end(), 0u);
          for (int s = 0; s < num_shards; ++s) {
            const auto& counts = state->partial[static_cast<size_t>(s)];
            for (size_t i = 0; i < supports->size(); ++i) {
              (*supports)[i] += counts[i];
            }
            txns_prefiltered_ +=
                state->per_shard[static_cast<size_t>(s)].txns_prefiltered;
          }
          // Return the warm buffers to the pool for the next count.
          scratch_.trie = std::move(state->trie);
          scratch_.partial = std::move(state->partial);
          scratch_.per_shard = std::move(state->per_shard);
          return Status::OK();
        });
  }

  const char* name() const override { return "horizontal"; }

 private:
  ThreadPool* pool_;
  CounterOptions options_;
  /// Pooled trie arena + shard buffers, reused across counts (the
  /// row-level reuse seam). Only touched from the thread driving
  /// Count/StartCount/Join.
  CountBatchScratch scratch_;
};

class VerticalCounter final : public SupportCounter {
 public:
  VerticalCounter(ThreadPool* pool, const CounterOptions& options)
      : pool_(pool), cancel_(options.cancel) {}

  Status Count(const LevelViews* views, int h,
               std::span<const Itemset> candidates,
               std::vector<uint32_t>* supports) override {
    supports->assign(candidates.size(), 0);
    if (candidates.empty()) return Status::OK();
    const VerticalIndex& index = views->EnsureVertical(h, pool_);
    // Each shard owns a disjoint slice of `supports`, with one
    // intersection scratch per shard.
    const int num_shards =
        ShardCount(candidates.size(), pool_, kMinCandidatesPerShard);
    const CancelToken* cancel = cancel_;
    ParallelFor(pool_, 0, candidates.size(), num_shards,
                [&](int, size_t lo, size_t hi) {
                  TidSet::IntersectScratch scratch;
                  for (size_t i = lo; i < hi; ++i) {
                    if (cancel != nullptr &&
                        ((i - lo) & (kCancelCheckStrideVertical - 1)) == 0 &&
                        cancel->Fired()) {
                      break;
                    }
                    (*supports)[i] =
                        index.Support(candidates[i], &scratch);
                  }
                });
    return Status::OK();
  }

  CountFuture StartCount(const LevelViews* views, int h,
                         std::span<const Itemset> candidates,
                         std::vector<uint32_t>* supports) override {
    supports->assign(candidates.size(), 0);
    if (candidates.empty()) return CountFuture(Status::OK());
    if (pool_ == nullptr) {
      return CountFuture(Count(views, h, candidates, supports));
    }
    // Build the lazy index before going async (thread-safe seam).
    const VerticalIndex& index = views->EnsureVertical(h, pool_);
    const int num_shards =
        ShardCount(candidates.size(), pool_, kMinCandidatesPerShard);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<size_t>(num_shards));
    const CancelToken* cancel = cancel_;
    for (int s = 0; s < num_shards; ++s) {
      const auto [lo, hi] =
          ShardRange(0, candidates.size(), num_shards, s);
      // Each shard writes a disjoint slice of `supports`.
      tasks.push_back([&index, candidates, supports, lo = lo, hi = hi, h,
                       cancel] {
        FLIPPER_TRACE_SPAN_HK("count_shard", "task", h, -1);
        TidSet::IntersectScratch scratch;
        for (size_t i = lo; i < hi; ++i) {
          if (cancel != nullptr &&
              ((i - lo) & (kCancelCheckStrideVertical - 1)) == 0 &&
              cancel->Fired()) {
            break;
          }
          (*supports)[i] = index.Support(candidates[i], &scratch);
        }
      });
    }
    return CountFuture(pool_->SubmitBatch(std::move(tasks)), nullptr);
  }

  const char* name() const override { return "vertical"; }

 private:
  ThreadPool* pool_;
  const CancelToken* cancel_;
};

}  // namespace

const SegmentCatalog* UsableCatalog(const SegmentCatalog* catalog,
                                    const TransactionDb& db) {
  if (catalog == nullptr || catalog->empty() ||
      catalog->boundaries().back() != db.size()) {
    return nullptr;
  }
  return catalog;
}

Status CountFuture::Join() {
  if (joined_) return status_;
  joined_ = true;
  try {
    completion_.Wait();
  } catch (const std::exception& e) {
    status_ = Status::Internal(std::string("async count failed: ") +
                               e.what());
    return status_;
  }
  if (finalize_ != nullptr) status_ = finalize_();
  return status_;
}

std::vector<char> SegmentScanFlags(const SegmentCatalog& catalog,
                                   std::span<const Itemset> candidates,
                                   uint64_t* skipped) {
  const size_t num_segments = catalog.num_segments();
  std::vector<char> scan(num_segments, 1);

  // Distinct items across the batch — the level vocabulary, which is
  // tiny next to the batch itself.
  std::unordered_set<ItemId> distinct;
  for (const Itemset& candidate : candidates) {
    distinct.insert(candidate.begin(), candidate.end());
  }

  std::unordered_set<ItemId> absent;
  for (size_t seg = 0; seg < num_segments; ++seg) {
    absent.clear();
    for (ItemId item : distinct) {
      if (!catalog.MayContain(seg, item)) absent.insert(item);
    }
    if (absent.empty()) continue;  // every candidate may occur — scan
    // The segment is skippable iff every candidate carries at least
    // one provably absent item; bail on the first survivor.
    bool any_viable = false;
    for (const Itemset& candidate : candidates) {
      bool viable = true;
      for (ItemId item : candidate) {
        if (absent.find(item) != absent.end()) {
          viable = false;
          break;
        }
      }
      if (viable) {
        any_viable = true;
        break;
      }
    }
    if (!any_viable) {
      scan[seg] = 0;
      if (skipped != nullptr) ++*skipped;
    }
  }
  return scan;
}

void CountBatchWithTrie(const TransactionDb& db,
                        std::span<const Itemset> candidates,
                        ThreadPool* pool,
                        std::span<uint32_t> supports,
                        const SegmentCatalog* catalog,
                        uint64_t* segments_skipped,
                        const CountBatchOptions& options) {
  std::fill(supports.begin(), supports.end(), 0u);
  catalog = UsableCatalog(catalog, db);
  std::vector<char> scan_flags;
  std::span<const uint64_t> boundaries;
  if (catalog != nullptr) {
    scan_flags = SegmentScanFlags(*catalog, candidates, segments_skipped);
    boundaries = catalog->boundaries();
  }

  CountBatchScratch local;
  CountBatchScratch* s =
      options.scratch != nullptr ? options.scratch : &local;
  {
    FLIPPER_TRACE_SPAN("trie_build", "detail");
    s->trie.Build(candidates, options.trie);
  }
  const int num_shards = ShardCount(db.size(), pool, kMinTxnsPerShard);
  if (s->per_shard.size() < static_cast<size_t>(num_shards)) {
    s->per_shard.resize(static_cast<size_t>(num_shards));
  }
  for (int i = 0; i < num_shards; ++i) {
    auto& cs = s->per_shard[static_cast<size_t>(i)];
    cs.Reserve(db.max_width());
    cs.txns_prefiltered = 0;
  }
  const CandidateTrie& trie = s->trie;
  const CancelToken* cancel = options.cancel;
  const auto count_range = [&](std::span<uint32_t> counts,
                               CandidateTrie::CountScratch* cs, size_t lo,
                               size_t hi) {
    size_t until_check = kCancelCheckStride;
    bool bail = false;
    ForEachScannableRange(
        boundaries, scan_flags, lo, hi,
        [&](size_t range_lo, size_t range_hi) {
          if (bail) return;
          for (size_t t = range_lo; t < range_hi; ++t) {
            if (cancel != nullptr && --until_check == 0) {
              until_check = kCancelCheckStride;
              if (cancel->Fired()) {
                bail = true;
                return;
              }
            }
            trie.CountTransaction(db.Get(static_cast<TxnId>(t)), counts,
                                  cs);
          }
        });
  };

  if (num_shards <= 1) {
    count_range(supports, &s->per_shard[0], 0, db.size());
  } else {
    // Private per-shard counters, merged in shard order. Addition is
    // commutative, so the merge order only matters for determinism of
    // overflow behaviour — cheap insurance either way.
    if (s->partial.size() < static_cast<size_t>(num_shards)) {
      s->partial.resize(static_cast<size_t>(num_shards));
    }
    ParallelFor(pool, 0, db.size(), num_shards,
                [&](int shard, size_t lo, size_t hi) {
                  FLIPPER_TRACE_SPAN("count_shard", "task");
                  auto& counts = s->partial[static_cast<size_t>(shard)];
                  counts.assign(candidates.size(), 0);
                  count_range(counts,
                              &s->per_shard[static_cast<size_t>(shard)],
                              lo, hi);
                });
    FLIPPER_TRACE_SPAN("shard_merge", "detail");
    for (int shard = 0; shard < num_shards; ++shard) {
      const auto& counts = s->partial[static_cast<size_t>(shard)];
      for (size_t i = 0; i < supports.size(); ++i) {
        supports[i] += counts[i];
      }
    }
  }
  for (int i = 0; i < num_shards; ++i) {
    const auto& cs = s->per_shard[static_cast<size_t>(i)];
    assert(cs.grow_events == 0 &&
           "per-transaction allocation in the counting hot loop");
    if (options.txns_prefiltered != nullptr) {
      *options.txns_prefiltered += cs.txns_prefiltered;
    }
  }
}

std::unique_ptr<SupportCounter> MakeCounter(CounterKind kind,
                                            ThreadPool* pool,
                                            const CounterOptions& options) {
  switch (kind) {
    case CounterKind::kHorizontal:
      return std::make_unique<HorizontalCounter>(pool, options);
    case CounterKind::kVertical:
      return std::make_unique<VerticalCounter>(pool, options);
  }
  return nullptr;
}

}  // namespace flipper
