#include "core/support_counting.h"

#include <algorithm>
#include <array>

#include "core/candidate_trie.h"

namespace flipper {
namespace {

constexpr size_t kMinTxnsPerShard = 512;

/// Candidates per shard below which sharding the intersection loop is
/// not worth the task dispatch and per-shard scratch.
constexpr size_t kMinCandidatesPerShard = 64;

class HorizontalCounter final : public SupportCounter {
 public:
  explicit HorizontalCounter(ThreadPool* pool) : pool_(pool) {}

  Status Count(LevelViews* views, int h,
               std::span<const Itemset> candidates,
               std::vector<uint32_t>* supports) override {
    supports->resize(candidates.size());
    if (candidates.empty()) return Status::OK();
    const TransactionDb& db = views->Level(h).db;

    // The trie requires uniform arity. The mining engines always send
    // one arity, so the common path feeds the candidate span straight
    // to the trie with no batch copy; mixed batches group by size.
    const bool uniform =
        std::all_of(candidates.begin(), candidates.end(),
                    [&](const Itemset& c) {
                      return c.size() == candidates.front().size();
                    });
    if (uniform) {
      CountBatchWithTrie(db, candidates, pool_, *supports);
      ++num_db_scans_;
      return Status::OK();
    }

    std::array<std::vector<uint32_t>, kMaxItemsetSize + 1> by_size;
    for (size_t i = 0; i < candidates.size(); ++i) {
      by_size[static_cast<size_t>(candidates[i].size())].push_back(
          static_cast<uint32_t>(i));
    }
    std::vector<Itemset> batch;
    std::vector<uint32_t> batch_supports;
    for (const auto& group : by_size) {
      if (group.empty()) continue;
      batch.clear();
      batch.reserve(group.size());
      for (uint32_t idx : group) batch.push_back(candidates[idx]);
      batch_supports.resize(batch.size());
      CountBatchWithTrie(db, batch, pool_, batch_supports);
      ++num_db_scans_;
      for (size_t j = 0; j < group.size(); ++j) {
        (*supports)[group[j]] = batch_supports[j];
      }
    }
    return Status::OK();
  }

  const char* name() const override { return "horizontal"; }

 private:
  ThreadPool* pool_;
};

class VerticalCounter final : public SupportCounter {
 public:
  explicit VerticalCounter(ThreadPool* pool) : pool_(pool) {}

  Status Count(LevelViews* views, int h,
               std::span<const Itemset> candidates,
               std::vector<uint32_t>* supports) override {
    supports->assign(candidates.size(), 0);
    if (candidates.empty()) return Status::OK();
    const VerticalIndex& index = views->EnsureVertical(h);
    // Each shard owns a disjoint slice of `supports`, with one
    // intersection scratch per shard.
    const int num_shards =
        ShardCount(candidates.size(), pool_, kMinCandidatesPerShard);
    ParallelFor(pool_, 0, candidates.size(), num_shards,
                [&](int, size_t lo, size_t hi) {
                  TidSet::IntersectScratch scratch;
                  for (size_t i = lo; i < hi; ++i) {
                    (*supports)[i] =
                        index.Support(candidates[i], &scratch);
                  }
                });
    return Status::OK();
  }

  const char* name() const override { return "vertical"; }

 private:
  ThreadPool* pool_;
};

}  // namespace

void CountBatchWithTrie(const TransactionDb& db,
                        std::span<const Itemset> candidates,
                        ThreadPool* pool,
                        std::span<uint32_t> supports) {
  std::fill(supports.begin(), supports.end(), 0u);
  const CandidateTrie trie(candidates);
  const int num_shards = ShardCount(db.size(), pool, kMinTxnsPerShard);
  if (num_shards <= 1) {
    for (TxnId t = 0; t < db.size(); ++t) {
      trie.CountTransaction(db.Get(t), supports);
    }
    return;
  }
  // Private per-shard counters, merged in shard order. Addition is
  // commutative, so the merge order only matters for determinism of
  // overflow behaviour — cheap insurance either way.
  std::vector<std::vector<uint32_t>> partial(
      static_cast<size_t>(num_shards));
  ParallelFor(pool, 0, db.size(), num_shards,
              [&](int shard, size_t lo, size_t hi) {
                auto& counts = partial[static_cast<size_t>(shard)];
                counts.assign(candidates.size(), 0);
                for (size_t t = lo; t < hi; ++t) {
                  trie.CountTransaction(db.Get(static_cast<TxnId>(t)),
                                        counts);
                }
              });
  for (const auto& counts : partial) {
    for (size_t i = 0; i < supports.size(); ++i) {
      supports[i] += counts[i];
    }
  }
}

std::unique_ptr<SupportCounter> MakeCounter(CounterKind kind,
                                            ThreadPool* pool) {
  switch (kind) {
    case CounterKind::kHorizontal:
      return std::make_unique<HorizontalCounter>(pool);
    case CounterKind::kVertical:
      return std::make_unique<VerticalCounter>(pool);
  }
  return nullptr;
}

}  // namespace flipper
