#include "core/support_counting.h"

#include <array>

#include "core/candidate_trie.h"

namespace flipper {
namespace {

class HorizontalCounter final : public SupportCounter {
 public:
  Status Count(LevelViews* views, int h,
               std::span<const Itemset> candidates,
               std::vector<uint32_t>* supports) override {
    supports->assign(candidates.size(), 0);
    if (candidates.empty()) return Status::OK();

    // The trie requires uniform arity; group mixed batches by size.
    // The mining engines always send one arity, so the common path
    // builds a single trie.
    std::array<std::vector<uint32_t>, kMaxItemsetSize + 1> by_size;
    for (size_t i = 0; i < candidates.size(); ++i) {
      by_size[static_cast<size_t>(candidates[i].size())].push_back(
          static_cast<uint32_t>(i));
    }
    const TransactionDb& db = views->Level(h).db;
    for (const auto& group : by_size) {
      if (group.empty()) continue;
      std::vector<Itemset> batch;
      batch.reserve(group.size());
      for (uint32_t idx : group) batch.push_back(candidates[idx]);
      CandidateTrie trie(batch);
      for (TxnId t = 0; t < db.size(); ++t) {
        trie.CountTransaction(db.Get(t));
      }
      ++num_db_scans_;
      for (size_t j = 0; j < group.size(); ++j) {
        (*supports)[group[j]] = trie.CountOf(j);
      }
    }
    return Status::OK();
  }

  const char* name() const override { return "horizontal"; }
};

class VerticalCounter final : public SupportCounter {
 public:
  Status Count(LevelViews* views, int h,
               std::span<const Itemset> candidates,
               std::vector<uint32_t>* supports) override {
    supports->assign(candidates.size(), 0);
    if (candidates.empty()) return Status::OK();
    const VerticalIndex& index = views->EnsureVertical(h);
    for (size_t i = 0; i < candidates.size(); ++i) {
      (*supports)[i] = index.Support(candidates[i]);
    }
    return Status::OK();
  }

  const char* name() const override { return "vertical"; }
};

}  // namespace

std::unique_ptr<SupportCounter> MakeCounter(CounterKind kind) {
  switch (kind) {
    case CounterKind::kHorizontal:
      return std::make_unique<HorizontalCounter>();
    case CounterKind::kVertical:
      return std::make_unique<VerticalCounter>();
  }
  return nullptr;
}

}  // namespace flipper
