// Text format for taxonomies.
//
//   # comment / blank lines skipped
//   root <name>            declares a level-1 node
//   edge <parent> <child>  declares a parent->child edge
//
// Names are interned into the caller's ItemDictionary so taxonomy nodes
// and transaction items share the id space.

#ifndef FLIPPER_TAXONOMY_TAXONOMY_IO_H_
#define FLIPPER_TAXONOMY_TAXONOMY_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "data/item_dictionary.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

Result<Taxonomy> ReadTaxonomyStream(std::istream& in,
                                    ItemDictionary* dict);
Result<Taxonomy> ReadTaxonomyFile(const std::string& path,
                                  ItemDictionary* dict);

Status WriteTaxonomyStream(const Taxonomy& tax, const ItemDictionary& dict,
                           std::ostream& out);
Status WriteTaxonomyFile(const Taxonomy& tax, const ItemDictionary& dict,
                         const std::string& path);

}  // namespace flipper

#endif  // FLIPPER_TAXONOMY_TAXONOMY_IO_H_
