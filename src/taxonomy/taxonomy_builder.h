// Incremental construction + validation of taxonomies.

#ifndef FLIPPER_TAXONOMY_TAXONOMY_BUILDER_H_
#define FLIPPER_TAXONOMY_TAXONOMY_BUILDER_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/types.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

/// Collects root declarations and parent->child edges, then Build()
/// validates (single parent, no cycles, connected to a root) and
/// assigns levels.
class TaxonomyBuilder {
 public:
  TaxonomyBuilder() = default;

  /// Declares a level-1 node. Idempotent.
  TaxonomyBuilder& AddRoot(ItemId node);

  /// Declares `child` as a child of `parent`. Fails fast on an obvious
  /// conflict (child already has a different parent); global validation
  /// happens in Build().
  Status AddEdge(ItemId parent, ItemId child);

  /// Validates and produces the taxonomy. Errors: a child with two
  /// parents, a cycle, a node unreachable from any root, a root that is
  /// also someone's child, or an empty taxonomy.
  Result<Taxonomy> Build() const;

 private:
  struct Edge {
    ItemId parent;
    ItemId child;
  };
  std::vector<ItemId> roots_;
  std::vector<Edge> edges_;
  /// child -> parent, for O(1) conflict detection in AddEdge.
  std::unordered_map<ItemId, ItemId> parent_of_;
};

}  // namespace flipper

#endif  // FLIPPER_TAXONOMY_TAXONOMY_BUILDER_H_
