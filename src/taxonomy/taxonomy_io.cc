#include "taxonomy/taxonomy_io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/string_util.h"
#include "taxonomy/taxonomy_builder.h"

namespace flipper {

Result<Taxonomy> ReadTaxonomyStream(std::istream& in,
                                    ItemDictionary* dict) {
  TaxonomyBuilder builder;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> tokens = SplitWhitespace(trimmed);
    if (tokens[0] == "root" && tokens.size() == 2) {
      builder.AddRoot(dict->Intern(tokens[1]));
    } else if (tokens[0] == "edge" && tokens.size() == 3) {
      FLIPPER_RETURN_IF_ERROR(builder.AddEdge(dict->Intern(tokens[1]),
                                              dict->Intern(tokens[2])));
    } else {
      return Status::CorruptedData(
          "taxonomy line " + std::to_string(lineno) +
          ": expected 'root <name>' or 'edge <parent> <child>', got '" +
          std::string(trimmed) + "'");
    }
  }
  if (in.bad()) {
    return Status::IoError("stream error while reading taxonomy");
  }
  return builder.Build();
}

Result<Taxonomy> ReadTaxonomyFile(const std::string& path,
                                  ItemDictionary* dict) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open taxonomy file: " + path);
  return ReadTaxonomyStream(f, dict);
}

Status WriteTaxonomyStream(const Taxonomy& tax, const ItemDictionary& dict,
                           std::ostream& out) {
  for (ItemId r : tax.Level1()) {
    if (r >= dict.size()) {
      return Status::InvalidArgument("node id " + std::to_string(r) +
                                     " missing from dictionary");
    }
    out << "root " << dict.Name(r) << '\n';
  }
  for (size_t id = 0; id < tax.id_space(); ++id) {
    const auto iid = static_cast<ItemId>(id);
    if (!tax.IsNode(iid)) continue;
    for (ItemId child : tax.ChildrenOf(iid)) {
      if (iid >= dict.size() || child >= dict.size()) {
        return Status::InvalidArgument("node id missing from dictionary");
      }
      out << "edge " << dict.Name(iid) << ' ' << dict.Name(child) << '\n';
    }
  }
  if (!out) return Status::IoError("stream error while writing taxonomy");
  return Status::OK();
}

Status WriteTaxonomyFile(const Taxonomy& tax, const ItemDictionary& dict,
                         const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  return WriteTaxonomyStream(tax, dict, f);
}

}  // namespace flipper
