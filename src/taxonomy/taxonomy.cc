#include "taxonomy/taxonomy.h"

#include <algorithm>

#include "common/logging.h"
#include "taxonomy/taxonomy_builder.h"

namespace flipper {

namespace {
const std::vector<ItemId> kEmptyChildren;
}  // namespace

std::span<const ItemId> Taxonomy::ChildrenOf(ItemId id) const {
  if (id >= children_.size()) return kEmptyChildren;
  return children_[id];
}

ItemId Taxonomy::AncestorAtLevel(ItemId id, int h) const {
  if (!IsNode(id) || h < 1 || h > height_) return kInvalidItem;
  int level = LevelOf(id);
  if (level == h) return id;
  if (level > h) {
    ItemId cur = id;
    while (level > h) {
      cur = parent_[cur];
      --level;
    }
    return cur;
  }
  // Deeper level requested: only leaves represent themselves below
  // their own level (Figure-3[B] copies).
  return IsLeaf(id) ? id : kInvalidItem;
}

const std::vector<ItemId>& Taxonomy::NodesAtLevel(int h) const {
  FLIPPER_CHECK(h >= 1 && h <= height_)
      << "level " << h << " outside [1, " << height_ << "]";
  return levels_[static_cast<size_t>(h - 1)];
}

std::vector<ItemId> Taxonomy::LevelMap(int h, size_t min_size) const {
  std::vector<ItemId> lut(std::max(id_space(), min_size), kInvalidItem);
  for (size_t id = 0; id < id_space(); ++id) {
    if (IsNode(static_cast<ItemId>(id))) {
      lut[id] = AncestorAtLevel(static_cast<ItemId>(id), h);
    }
  }
  return lut;
}

Result<Taxonomy> Taxonomy::RestrictToLevels(
    std::span<const int> levels) const {
  if (levels.empty()) {
    return Status::InvalidArgument("RestrictToLevels: empty level list");
  }
  for (size_t i = 0; i < levels.size(); ++i) {
    if (levels[i] < 1 || levels[i] > height_) {
      return Status::OutOfRange("RestrictToLevels: level " +
                                std::to_string(levels[i]) +
                                " outside [1, " + std::to_string(height_) +
                                "]");
    }
    if (i > 0 && levels[i] <= levels[i - 1]) {
      return Status::InvalidArgument(
          "RestrictToLevels: levels must be strictly increasing");
    }
  }
  if (levels.back() != height_) {
    return Status::InvalidArgument(
        "RestrictToLevels: the leaf level (height) must be retained");
  }

  TaxonomyBuilder builder;
  // For every node at a retained level, its new parent is its ancestor
  // at the previous retained level.
  for (size_t li = 0; li < levels.size(); ++li) {
    const int h = levels[li];
    for (ItemId node : NodesAtLevel(h)) {
      if (LevelOf(node) < h) continue;  // self-copy; original id suffices
      if (li == 0) {
        builder.AddRoot(node);
      } else {
        const ItemId parent = AncestorAtLevel(node, levels[li - 1]);
        FLIPPER_CHECK(parent != kInvalidItem);
        if (parent == node) {
          // Shallow leaf already added as its own level-(li-1) copy.
          continue;
        }
        FLIPPER_RETURN_IF_ERROR(builder.AddEdge(parent, node));
      }
    }
  }
  // Shallow leaves whose own level was dropped: attach to the ancestor
  // at the deepest retained level above them.
  for (ItemId leaf : leaves_) {
    const int leaf_level = LevelOf(leaf);
    if (std::find(levels.begin(), levels.end(), leaf_level) !=
        levels.end()) {
      continue;  // handled above
    }
    // Deepest retained level strictly above the leaf.
    int attach_level = 0;
    for (int h : levels) {
      if (h < leaf_level) attach_level = h;
    }
    if (attach_level == 0) {
      builder.AddRoot(leaf);
    } else {
      const ItemId parent = AncestorAtLevel(leaf, attach_level);
      FLIPPER_RETURN_IF_ERROR(builder.AddEdge(parent, leaf));
    }
  }
  return builder.Build();
}

Status Taxonomy::Validate() const {
  for (size_t id = 0; id < id_space(); ++id) {
    const auto iid = static_cast<ItemId>(id);
    if (!IsNode(iid)) continue;
    const ItemId p = parent_[id];
    if (level_[id] == 1) {
      if (p != kInvalidItem) {
        return Status::CorruptedData("level-1 node " + std::to_string(id) +
                                     " has a parent");
      }
    } else {
      if (p == kInvalidItem || !IsNode(p)) {
        return Status::CorruptedData("node " + std::to_string(id) +
                                     " has an invalid parent");
      }
      if (level_[p] + 1 != level_[id]) {
        return Status::CorruptedData("node " + std::to_string(id) +
                                     " level is not parent level + 1");
      }
      const auto& siblings = children_[p];
      if (std::find(siblings.begin(), siblings.end(), iid) ==
          siblings.end()) {
        return Status::CorruptedData("node " + std::to_string(id) +
                                     " missing from its parent's children");
      }
    }
  }
  return Status::OK();
}

}  // namespace flipper
