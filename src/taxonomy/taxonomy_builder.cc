#include "taxonomy/taxonomy_builder.h"

#include <algorithm>
#include <queue>

namespace flipper {

TaxonomyBuilder& TaxonomyBuilder::AddRoot(ItemId node) {
  if (std::find(roots_.begin(), roots_.end(), node) == roots_.end()) {
    roots_.push_back(node);
  }
  return *this;
}

Status TaxonomyBuilder::AddEdge(ItemId parent, ItemId child) {
  if (parent == child) {
    return Status::InvalidArgument("taxonomy self-edge on node " +
                                   std::to_string(parent));
  }
  const auto [it, inserted] = parent_of_.emplace(child, parent);
  if (!inserted && it->second != parent) {
    return Status::InvalidArgument(
        "node " + std::to_string(child) + " already has parent " +
        std::to_string(it->second) + ", cannot add parent " +
        std::to_string(parent));
  }
  edges_.push_back({parent, child});
  return Status::OK();
}

Result<Taxonomy> TaxonomyBuilder::Build() const {
  if (roots_.empty()) {
    return Status::InvalidArgument(
        "taxonomy has no level-1 nodes (call AddRoot)");
  }
  ItemId max_id = 0;
  for (ItemId r : roots_) max_id = std::max(max_id, r);
  for (const Edge& e : edges_) {
    max_id = std::max(max_id, std::max(e.parent, e.child));
  }
  const size_t n = static_cast<size_t>(max_id) + 1;

  Taxonomy tax;
  tax.parent_.assign(n, kInvalidItem);
  tax.level_.assign(n, 0);
  tax.root_.assign(n, kInvalidItem);
  tax.children_.assign(n, {});

  std::vector<char> has_parent(n, 0);
  std::vector<char> seen(n, 0);
  for (const Edge& e : edges_) {
    if (has_parent[e.child]) {
      // Duplicate edge: allow exact repeats, reject conflicts.
      if (tax.parent_[e.child] != e.parent) {
        return Status::InvalidArgument("node " + std::to_string(e.child) +
                                       " has two distinct parents");
      }
      continue;
    }
    has_parent[e.child] = 1;
    tax.parent_[e.child] = e.parent;
    tax.children_[e.parent].push_back(e.child);
    seen[e.child] = seen[e.parent] = 1;
  }
  for (ItemId r : roots_) {
    if (has_parent[r]) {
      return Status::InvalidArgument("root node " + std::to_string(r) +
                                     " also appears as a child");
    }
    seen[r] = 1;
  }

  // BFS from the roots assigns levels and detects unreachable nodes
  // (which would indicate a cycle or a dangling edge).
  std::queue<ItemId> queue;
  size_t reached = 0;
  for (ItemId r : roots_) {
    tax.level_[r] = 1;
    tax.root_[r] = r;
    queue.push(r);
  }
  int height = 1;
  while (!queue.empty()) {
    const ItemId cur = queue.front();
    queue.pop();
    ++reached;
    height = std::max(height, static_cast<int>(tax.level_[cur]));
    for (ItemId child : tax.children_[cur]) {
      tax.level_[child] = tax.level_[cur] + 1;
      tax.root_[child] = tax.root_[cur];
      queue.push(child);
    }
  }
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) total += seen[i];
  if (reached != total) {
    return Status::InvalidArgument(
        "taxonomy contains a cycle or nodes unreachable from any root (" +
        std::to_string(total - reached) + " unreachable)");
  }

  // Leaves must have exactly the height of the deepest leaf, or be
  // shallow leaves (self-copy semantics). height_ = deepest leaf level.
  tax.height_ = height;

  // Sort children for deterministic traversal.
  for (auto& ch : tax.children_) std::sort(ch.begin(), ch.end());

  // Level rosters: real nodes at level h plus shallow-leaf copies.
  tax.levels_.assign(static_cast<size_t>(height), {});
  for (size_t id = 0; id < n; ++id) {
    const int level = tax.level_[id];
    if (level == 0) continue;
    const auto iid = static_cast<ItemId>(id);
    tax.levels_[static_cast<size_t>(level - 1)].push_back(iid);
    if (tax.children_[id].empty()) {
      tax.leaves_.push_back(iid);
      for (int h = level + 1; h <= height; ++h) {
        tax.levels_[static_cast<size_t>(h - 1)].push_back(iid);
      }
    }
  }
  for (auto& lv : tax.levels_) std::sort(lv.begin(), lv.end());
  std::sort(tax.leaves_.begin(), tax.leaves_.end());

  return tax;
}

}  // namespace flipper
