// Taxonomy: the is-a hierarchy over items (paper §2.2).
//
// The (virtual) root is implicit and excluded from correlation mining;
// level 1 holds the most general real nodes, level H the deepest
// leaves. Leaves shallower than H represent themselves at every deeper
// level — the paper's Figure-3[B] rebalancing ("consider the copies of
// leaf nodes as their generalizations") without materializing copies.
// A Figure-3[A]-style truncation is available via RestrictToLevels().

#ifndef FLIPPER_TAXONOMY_TAXONOMY_H_
#define FLIPPER_TAXONOMY_TAXONOMY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/types.h"

namespace flipper {

class TaxonomyBuilder;

class Taxonomy {
 public:
  /// Creates an empty taxonomy (height 0, no nodes); build real ones
  /// with TaxonomyBuilder.
  Taxonomy() = default;

  /// Height H: the number of levels from level 1 to the deepest leaf.
  int height() const { return height_; }

  /// Number of nodes known to the taxonomy (ids may be sparse; absent
  /// ids are not part of the taxonomy).
  size_t id_space() const { return parent_.size(); }

  /// True if `id` is a taxonomy node.
  bool IsNode(ItemId id) const {
    return id < level_.size() && level_[id] != 0;
  }

  /// Level of a node (1-based from the top). Requires IsNode(id).
  int LevelOf(ItemId id) const { return level_[id]; }

  /// Parent node, or kInvalidItem for level-1 nodes.
  ItemId ParentOf(ItemId id) const { return parent_[id]; }

  /// Children of a node (empty for leaves).
  std::span<const ItemId> ChildrenOf(ItemId id) const;

  bool IsLeaf(ItemId id) const { return ChildrenOf(id).empty(); }

  /// The node that represents `id` at level `h` (1 <= h <= height()):
  /// walks up when LevelOf(id) > h; returns `id` itself when it is a
  /// leaf at a shallower level (self-copy semantics). Returns
  /// kInvalidItem when `id` is not a node or when an internal node is
  /// asked for a deeper level than its own.
  ItemId AncestorAtLevel(ItemId id, int h) const;

  /// The level-1 ancestor (used for the distinct-level-1-roots
  /// constraint on flipping patterns). O(1) via a precomputed table.
  ItemId RootOf(ItemId id) const {
    return id < root_.size() ? root_[id] : kInvalidItem;
  }

  /// All nodes that exist at level `h` including shallow-leaf
  /// self-copies; this is exactly the vocabulary of the level-h
  /// generalized database.
  const std::vector<ItemId>& NodesAtLevel(int h) const;

  /// All leaves (transaction vocabulary).
  const std::vector<ItemId>& Leaves() const { return leaves_; }

  /// Level-1 nodes.
  const std::vector<ItemId>& Level1() const { return levels_[0]; }

  /// Lookup table `lut` with lut[id] = AncestorAtLevel(id, h) for every
  /// id in [0, id_space), kInvalidItem for non-nodes; sized to at least
  /// `min_size`. Feed it to TransactionDb::Generalize.
  std::vector<ItemId> LevelMap(int h, size_t min_size = 0) const;

  /// Returns a new taxonomy using only the given levels of this one
  /// (Def. 2's truncated-taxonomy queries; also Figure-3[A] when called
  /// with the consistent levels). `levels` must be a non-empty,
  /// strictly increasing subset of [1, height()] that contains
  /// height(); leaves keep their ids, internal nodes keep theirs.
  Result<Taxonomy> RestrictToLevels(std::span<const int> levels) const;

  /// Structural sanity check (parents valid, levels consistent,
  /// children lists match parents). OK for builder-produced trees;
  /// mainly used by tests and after deserialization.
  Status Validate() const;

 private:
  friend class TaxonomyBuilder;

  int height_ = 0;
  std::vector<ItemId> parent_;           // kInvalidItem for level 1 / absent
  std::vector<int32_t> level_;           // 0 = not a node
  std::vector<ItemId> root_;             // level-1 ancestor per node
  std::vector<std::vector<ItemId>> children_;
  std::vector<std::vector<ItemId>> levels_;  // levels_[h-1] incl. copies
  std::vector<ItemId> leaves_;
};

}  // namespace flipper

#endif  // FLIPPER_TAXONOMY_TAXONOMY_H_
