// Shared fixtures: the paper's Figure-4 toy dataset and randomized
// dataset construction for differential tests.

#ifndef FLIPPER_TESTS_TEST_UTIL_H_
#define FLIPPER_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "data/item_dictionary.h"
#include "data/transaction_db.h"
#include "taxonomy/taxonomy.h"
#include "taxonomy/taxonomy_builder.h"

namespace flipper {
namespace testutil {

struct Dataset {
  ItemDictionary dict;
  Taxonomy taxonomy;
  TransactionDb db;
};

/// The toy example of the paper's Figure 4: 8 leaf items in two
/// 3-level branches and 10 transactions. With gamma = 0.6 and
/// epsilon = 0.35 the only flipping pattern is {a11, b11} (Figure 5).
inline Dataset PaperToyDataset() {
  Dataset out;
  TaxonomyBuilder builder;
  auto intern = [&](const char* name) { return out.dict.Intern(name); };
  const ItemId a = intern("a");
  const ItemId b = intern("b");
  builder.AddRoot(a);
  builder.AddRoot(b);
  auto edge = [&](ItemId parent, const char* child) {
    const ItemId id = intern(child);
    FLIPPER_CHECK(builder.AddEdge(parent, id).ok());
    return id;
  };
  const ItemId a1 = edge(a, "a1");
  const ItemId a2 = edge(a, "a2");
  const ItemId b1 = edge(b, "b1");
  const ItemId b2 = edge(b, "b2");
  edge(a1, "a11");
  edge(a1, "a12");
  edge(a2, "a21");
  edge(a2, "a22");
  edge(b1, "b11");
  edge(b1, "b12");
  edge(b2, "b21");
  edge(b2, "b22");
  auto built = builder.Build();
  FLIPPER_CHECK(built.ok()) << built.status();
  out.taxonomy = std::move(built).value();

  auto add = [&](std::initializer_list<const char*> names) {
    std::vector<ItemId> items;
    for (const char* name : names) {
      auto id = out.dict.Find(name);
      FLIPPER_CHECK(id.ok());
      items.push_back(*id);
    }
    out.db.Add(items);
  };
  add({"a11", "a22", "b11", "b22"});  // D1
  add({"a11", "a21", "b11"});         // D2
  add({"a12", "a21"});                // D3
  add({"a12", "a22", "b21"});         // D4
  add({"a12", "a22", "b21"});         // D5
  add({"a12", "a21", "b22"});         // D6
  add({"a21", "b12"});                // D7
  add({"b12", "b21", "b22"});         // D8
  add({"b12", "b21"});                // D9
  add({"a22", "b12", "b22"});         // D10
  return out;
}

/// A random balanced taxonomy plus random transactions over its
/// leaves; used by the differential and property suites.
inline Dataset RandomDataset(uint64_t seed, uint32_t num_roots = 4,
                             uint32_t fanout = 2, uint32_t depth = 3,
                             uint32_t num_txns = 300,
                             uint32_t max_width = 6) {
  Dataset out;
  Rng rng(seed);
  TaxonomyBuilder builder;
  std::vector<ItemId> frontier;
  for (uint32_t r = 0; r < num_roots; ++r) {
    const ItemId id = out.dict.Intern("r" + std::to_string(r));
    builder.AddRoot(id);
    frontier.push_back(id);
  }
  for (uint32_t level = 2; level <= depth; ++level) {
    std::vector<ItemId> next;
    for (ItemId parent : frontier) {
      // Jitter the fanout a little so trees are not perfectly regular;
      // occasionally skip a child to create shallow leaves.
      const uint32_t children =
          fanout + (rng.Bernoulli(0.3) ? 1 : 0) -
          (fanout > 1 && rng.Bernoulli(0.2) ? 1 : 0);
      for (uint32_t c = 0; c < children; ++c) {
        const ItemId id = out.dict.Intern(
            std::string(out.dict.Name(parent)) + "." + std::to_string(c));
        FLIPPER_CHECK(builder.AddEdge(parent, id).ok());
        next.push_back(id);
      }
    }
    if (next.empty()) break;
    frontier = std::move(next);
  }
  auto built = builder.Build();
  FLIPPER_CHECK(built.ok()) << built.status();
  out.taxonomy = std::move(built).value();

  const std::vector<ItemId>& leaves = out.taxonomy.Leaves();
  std::vector<ItemId> txn;
  for (uint32_t t = 0; t < num_txns; ++t) {
    txn.clear();
    const uint32_t width =
        1 + static_cast<uint32_t>(rng.Below(max_width));
    for (uint32_t i = 0; i < width; ++i) {
      txn.push_back(leaves[rng.Below(leaves.size())]);
    }
    out.db.Add(txn);
  }
  return out;
}

}  // namespace testutil
}  // namespace flipper

#endif  // FLIPPER_TESTS_TEST_UTIL_H_
