// Byte-level crash-recovery sweep for the FlipperStore commit
// protocol. The fault-injection FileSystem (storage/file_io.h) kills
// the write stream at EVERY byte offset of a fresh-store write and of
// an append session; after each simulated crash the file must come
// back — via AnalyzeStore/ApplyRepair — to exactly the last committed
// state, byte for byte:
//
//   - fault before the commit trailer is complete  -> the base store
//   - fault at/after the trailer (front header rewrite torn or
//     skipped) -> the appended store
//
// and the recovered store must mine identically to the oracle for its
// state. A fresh-store crash must never leave anything at the final
// path (temp file + rename). The kFailOp mode (recoverable I/O errors
// instead of a process crash) additionally requires the writer's own
// cleanup to run: no stray temp file, append sessions rolled back to
// the base bytes — unless the commit point already passed, in which
// case the data must be kept and only the front header repaired.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/flipper_miner.h"
#include "core/pattern_io.h"
#include "storage/file_io.h"
#include "storage/recovery.h"
#include "storage/store_reader.h"
#include "storage/store_writer.h"
#include "test_util.h"

namespace flipper {
namespace {

namespace fs = std::filesystem;
using storage::FaultInjectingFileSystem;
using storage::FaultMode;
using storage::FaultPlan;
using storage::RepairPlan;
using storage::StoreReader;
using storage::StoreWriter;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f) << path;
  std::ostringstream oss;
  oss << f.rdbuf();
  return oss.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f) << path;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Deterministic mining result of a store file, as the CSV export.
std::string MineCsv(const std::string& path) {
  auto reader = StoreReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status();
  if (!reader.ok()) return "<open failed>";
  MiningConfig config;
  config.gamma = 0.4;
  config.epsilon = 0.15;
  config.min_support = {0.08, 0.05, 0.05};
  config.num_threads = 1;
  auto run = FlipperMiner::Run(reader->db(), reader->taxonomy(), config);
  EXPECT_TRUE(run.ok()) << run.status();
  if (!run.ok()) return "<mine failed>";
  std::ostringstream oss;
  EXPECT_TRUE(WritePatternsCsv(run->patterns, &reader->dict(), oss).ok());
  return oss.str();
}

/// The shared scenario: a small random dataset split into a base
/// store and one appended batch, with segments small enough that both
/// parts span several.
struct Scenario {
  testutil::Dataset data;
  uint64_t base_txns = 0;
  StoreWriter::Options base_options;
  StoreWriter::AppendOptions append_options;

  Scenario() : data(testutil::RandomDataset(/*seed=*/77, 3, 2, 2, 48, 5)) {
    base_txns = 32;
    base_options.segment_txns = 8;
    base_options.catalog_tracked_items = 6;
  }

  void WriteBase(const std::string& path) const {
    auto writer = StoreWriter::Create(path, base_options);
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (uint64_t t = 0; t < base_txns; ++t) {
      ASSERT_TRUE(writer->Append(data.db.Get(t)).ok());
    }
    ASSERT_TRUE(writer->Finish(data.dict, data.taxonomy).ok());
  }

  /// Runs the whole append session against `fault_fs`; returns the
  /// first non-OK status (OK if everything succeeded).
  Status RunAppend(const std::string& path,
                   FaultInjectingFileSystem* fault_fs) const {
    auto writer = StoreWriter::OpenAppend(path, append_options, fault_fs);
    FLIPPER_RETURN_IF_ERROR(writer.status());
    for (uint64_t t = base_txns; t < data.db.size(); ++t) {
      FLIPPER_RETURN_IF_ERROR(writer->Append(data.db.Get(t)));
    }
    return writer->Finish(data.dict, data.taxonomy);
  }
};

/// Repairs `path` and requires a clean validated reopen afterwards.
void RepairAndVerify(const std::string& path) {
  auto plan = storage::AnalyzeStore(path);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_NE(plan->action, RepairPlan::Action::kUnrecoverable)
      << plan->detail;
  ASSERT_TRUE(storage::ApplyRepair(path, *plan).ok());
}

// --- The headline sweep: crash at every byte of an append session. --

TEST(CrashRecovery, AppendCrashAtEveryByteOffset) {
  const Scenario scenario;
  const std::string base_path = TempPath("crash_append_base.fdb");
  const std::string work_path = TempPath("crash_append_work.fdb");
  scenario.WriteBase(base_path);
  const std::string base_bytes = ReadFileBytes(base_path);

  // Clean run: measure the session's total write volume W and capture
  // the committed result (the oracle for post-commit faults).
  FaultInjectingFileSystem fault_fs;
  fault_fs.set_plan(FaultPlan{});
  WriteFileBytes(work_path, base_bytes);
  ASSERT_TRUE(scenario.RunAppend(work_path, &fault_fs).ok());
  const uint64_t total_bytes = fault_fs.bytes_written();
  ASSERT_GT(total_bytes, sizeof(storage::FileHeader));
  const std::string committed_bytes = ReadFileBytes(work_path);
  ASSERT_NE(committed_bytes, base_bytes);

  const std::string base_csv = MineCsv(base_path);
  const std::string committed_csv = MineCsv(work_path);

  // The last 104 bytes of the session are the front-header rewrite;
  // everything before completes the commit trailer.
  const uint64_t commit_point = total_bytes - sizeof(storage::FileHeader);
  for (uint64_t k = 0; k < total_bytes; ++k) {
    SCOPED_TRACE("crash after " + std::to_string(k) + " of " +
                 std::to_string(total_bytes) + " bytes");
    WriteFileBytes(work_path, base_bytes);
    FaultPlan plan;
    plan.write_budget = k;
    plan.mode = FaultMode::kCrash;
    fault_fs.set_plan(plan);
    const Status crashed = scenario.RunAppend(work_path, &fault_fs);
    ASSERT_FALSE(crashed.ok());
    ASSERT_TRUE(fault_fs.triggered());

    RepairAndVerify(work_path);
    const std::string& expected =
        k < commit_point ? base_bytes : committed_bytes;
    ASSERT_EQ(ReadFileBytes(work_path), expected)
        << (k < commit_point ? "pre-commit crash must restore the base "
                               "store"
                             : "post-commit crash must keep the "
                               "appended store");
    // Byte equality already implies mining equality; spot-check the
    // full pipeline around the commit point and periodically.
    if (k % 64 == 0 || k + 3 * sizeof(storage::FileHeader) > total_bytes) {
      ASSERT_EQ(MineCsv(work_path),
                k < commit_point ? base_csv : committed_csv);
    }
    // Repair must be idempotent: analyzing again finds a clean file.
    auto replan = storage::AnalyzeStore(work_path);
    ASSERT_TRUE(replan.ok());
    ASSERT_EQ(replan->action, RepairPlan::Action::kNone);
  }
}

// --- Crash at every byte of a fresh-store write. ---------------------

TEST(CrashRecovery, FreshWriteCrashNeverTouchesFinalPath) {
  const testutil::Dataset data = testutil::PaperToyDataset();
  const std::string path = TempPath("crash_fresh.fdb");
  const std::string temp = path + ".tmp";
  StoreWriter::Options options;
  options.segment_txns = 4;

  // Clean run to measure W.
  FaultInjectingFileSystem fault_fs;
  fault_fs.set_plan(FaultPlan{});
  fs::remove(path);
  ASSERT_TRUE(storage::WriteStoreFile(path, data.db, data.dict,
                                      data.taxonomy, options, &fault_fs)
                  .ok());
  const uint64_t total_bytes = fault_fs.bytes_written();
  const std::string committed_bytes = ReadFileBytes(path);
  ASSERT_FALSE(fs::exists(temp));

  for (uint64_t k = 0; k < total_bytes; ++k) {
    SCOPED_TRACE("crash after " + std::to_string(k) + " of " +
                 std::to_string(total_bytes) + " bytes");
    fs::remove(path);
    fs::remove(temp);
    FaultPlan plan;
    plan.write_budget = k;
    plan.mode = FaultMode::kCrash;
    fault_fs.set_plan(plan);
    const Status crashed = storage::WriteStoreFile(
        path, data.db, data.dict, data.taxonomy, options, &fault_fs);
    ASSERT_FALSE(crashed.ok());
    // The final path must not exist in any form: the rename only runs
    // after a successful fsync, which the fault forbids.
    ASSERT_FALSE(fs::exists(path))
        << "a crashed fresh write leaked a file at the final path";
  }
  fs::remove(temp);

  // And the clean run is reproducible after all that.
  fault_fs.set_plan(FaultPlan{});
  ASSERT_TRUE(storage::WriteStoreFile(path, data.db, data.dict,
                                      data.taxonomy, options, &fault_fs)
                  .ok());
  ASSERT_EQ(ReadFileBytes(path), committed_bytes);
}

// --- Failed fsyncs. --------------------------------------------------

TEST(CrashRecovery, AppendSyncFailureAtEveryFsync) {
  const Scenario scenario;
  const std::string base_path = TempPath("crash_sync_base.fdb");
  const std::string work_path = TempPath("crash_sync_work.fdb");
  scenario.WriteBase(base_path);
  const std::string base_bytes = ReadFileBytes(base_path);

  FaultInjectingFileSystem fault_fs;
  fault_fs.set_plan(FaultPlan{});
  WriteFileBytes(work_path, base_bytes);
  ASSERT_TRUE(scenario.RunAppend(work_path, &fault_fs).ok());
  const uint64_t total_syncs = fault_fs.syncs();
  ASSERT_GE(total_syncs, 3u);  // data barrier, commit point, front header
  const std::string committed_bytes = ReadFileBytes(work_path);

  for (uint64_t s = 0; s < total_syncs; ++s) {
    SCOPED_TRACE("fsync " + std::to_string(s) + " of " +
                 std::to_string(total_syncs) + " fails");
    WriteFileBytes(work_path, base_bytes);
    FaultPlan plan;
    plan.sync_budget = s;
    plan.mode = FaultMode::kCrash;
    fault_fs.set_plan(plan);
    ASSERT_FALSE(scenario.RunAppend(work_path, &fault_fs).ok());

    RepairAndVerify(work_path);
    const std::string recovered = ReadFileBytes(work_path);
    // Failing the data barrier (sync 0) kills the session before any
    // trailer byte is written: recovery restores the base. For later
    // fsyncs the trailer bytes already reached the file even though
    // durability was never confirmed, so recovery finds a complete
    // commit record and honors it (presumed commit) — never anything
    // in between.
    const std::string& expected = s == 0 ? base_bytes : committed_bytes;
    ASSERT_EQ(recovered, expected);
  }
}

// --- kFailOp: recoverable errors, writer cleanup must run. -----------

TEST(CrashRecovery, FailOpFreshWriteLeavesNoTempFile) {
  const testutil::Dataset data = testutil::PaperToyDataset();
  const std::string path = TempPath("failop_fresh.fdb");
  const std::string temp = path + ".tmp";
  StoreWriter::Options options;
  options.segment_txns = 4;

  FaultInjectingFileSystem fault_fs;
  fault_fs.set_plan(FaultPlan{});
  fs::remove(path);
  ASSERT_TRUE(storage::WriteStoreFile(path, data.db, data.dict,
                                      data.taxonomy, options, &fault_fs)
                  .ok());
  const uint64_t total_bytes = fault_fs.bytes_written();
  fs::remove(path);

  for (uint64_t k = 0; k < total_bytes; ++k) {
    SCOPED_TRACE("I/O error after " + std::to_string(k) + " bytes");
    FaultPlan plan;
    plan.write_budget = k;
    plan.mode = FaultMode::kFailOp;
    fault_fs.set_plan(plan);
    const Status failed = storage::WriteStoreFile(
        path, data.db, data.dict, data.taxonomy, options, &fault_fs);
    ASSERT_FALSE(failed.ok());
    // Metadata ops work in kFailOp, so the writer's error path must
    // have removed its temp file and never created the final path.
    ASSERT_FALSE(fs::exists(temp)) << "stray temp file after error";
    ASSERT_FALSE(fs::exists(path));
  }
}

TEST(CrashRecovery, FailOpAppendRollsBackOrKeepsCommit) {
  const Scenario scenario;
  const std::string base_path = TempPath("failop_append_base.fdb");
  const std::string work_path = TempPath("failop_append_work.fdb");
  scenario.WriteBase(base_path);
  const std::string base_bytes = ReadFileBytes(base_path);

  FaultInjectingFileSystem fault_fs;
  fault_fs.set_plan(FaultPlan{});
  WriteFileBytes(work_path, base_bytes);
  ASSERT_TRUE(scenario.RunAppend(work_path, &fault_fs).ok());
  const uint64_t total_bytes = fault_fs.bytes_written();
  const std::string committed_bytes = ReadFileBytes(work_path);
  const uint64_t commit_point = total_bytes - sizeof(storage::FileHeader);

  for (uint64_t k = 0; k < total_bytes; ++k) {
    SCOPED_TRACE("I/O error after " + std::to_string(k) + " bytes");
    WriteFileBytes(work_path, base_bytes);
    FaultPlan plan;
    plan.write_budget = k;
    plan.mode = FaultMode::kFailOp;
    fault_fs.set_plan(plan);
    ASSERT_FALSE(scenario.RunAppend(work_path, &fault_fs).ok());
    if (k < commit_point) {
      // Error before the commit point: the writer rolls back in place
      // (Truncate works in kFailOp) — no repair needed.
      ASSERT_EQ(ReadFileBytes(work_path), base_bytes)
          << "pre-commit error must roll back to the base store";
      auto plan_after = storage::AnalyzeStore(work_path);
      ASSERT_TRUE(plan_after.ok());
      ASSERT_EQ(plan_after->action, RepairPlan::Action::kNone);
    } else {
      // Error after the commit point: the session is durable and must
      // NOT be rolled back; only the front header needs repair.
      RepairAndVerify(work_path);
      ASSERT_EQ(ReadFileBytes(work_path), committed_bytes)
          << "post-commit error must keep the committed session";
    }
  }
}

// --- Abandoned writers clean up after themselves. --------------------

TEST(CrashRecovery, DroppedWriterRemovesTempFile) {
  const testutil::Dataset data = testutil::PaperToyDataset();
  const std::string path = TempPath("dropped_fresh.fdb");
  fs::remove(path);
  {
    auto writer = StoreWriter::Create(path, StoreWriter::Options());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(data.db.Get(0)).ok());
    // Dropped without Finish().
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(CrashRecovery, DroppedAppendSessionRestoresBase) {
  const Scenario scenario;
  const std::string path = TempPath("dropped_append.fdb");
  scenario.WriteBase(path);
  const std::string base_bytes = ReadFileBytes(path);
  {
    auto writer = StoreWriter::OpenAppend(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(scenario.data.db.Get(0)).ok());
    // Dropped without Finish().
  }
  EXPECT_EQ(ReadFileBytes(path), base_bytes);
  EXPECT_TRUE(StoreReader::Open(path).ok());
}

// --- Repair semantics. -----------------------------------------------

TEST(CrashRecovery, DryRunAnalysisNeverModifiesTheFile) {
  const Scenario scenario;
  const std::string path = TempPath("analyze_readonly.fdb");
  scenario.WriteBase(path);
  std::string torn = ReadFileBytes(path);
  torn += std::string(57, '\x7f');  // torn tail
  WriteFileBytes(path, torn);

  auto plan = storage::AnalyzeStore(path);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->action, RepairPlan::Action::kTruncateTail);
  EXPECT_EQ(plan->torn_bytes, 57u);
  EXPECT_EQ(ReadFileBytes(path), torn) << "analysis modified the file";

  auto diagnosis = storage::DiagnoseStore(path);
  ASSERT_TRUE(diagnosis.ok());
  EXPECT_FALSE(diagnosis->valid);
  EXPECT_EQ(ReadFileBytes(path), torn) << "diagnosis modified the file";
}

TEST(CrashRecovery, RepairRefusesUnrecoverableFiles) {
  const std::string path = TempPath("unrecoverable.fdb");
  WriteFileBytes(path, std::string(4096, '\x5a'));
  auto plan = storage::AnalyzeStore(path);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->action, RepairPlan::Action::kUnrecoverable);
  const Status applied = storage::ApplyRepair(path, *plan);
  EXPECT_FALSE(applied.ok());
  EXPECT_EQ(ReadFileBytes(path), std::string(4096, '\x5a'))
      << "repair touched an unrecoverable file";
}

TEST(CrashRecovery, OpenPrefixReportsTheRecoveryShape) {
  const Scenario scenario;
  const std::string path = TempPath("prefix_shapes.fdb");
  scenario.WriteBase(path);
  const std::string base_bytes = ReadFileBytes(path);

  storage::PrefixInfo info;
  ASSERT_TRUE(StoreReader::OpenPrefix(path, &info).ok());
  EXPECT_EQ(info.recovery, storage::PrefixInfo::Recovery::kClean);
  EXPECT_EQ(info.committed_size, base_bytes.size());

  WriteFileBytes(path, base_bytes + std::string(31, 'x'));
  auto torn = StoreReader::OpenPrefix(path, &info);
  ASSERT_TRUE(torn.ok()) << torn.status();
  EXPECT_EQ(info.recovery, storage::PrefixInfo::Recovery::kTruncateTail);
  EXPECT_EQ(info.committed_size, base_bytes.size());
  EXPECT_EQ(info.physical_size, base_bytes.size() + 31);
  // The torn bytes are invisible to the opened reader.
  EXPECT_EQ(torn->header().file_size, base_bytes.size());
  EXPECT_EQ(torn->db().size(), scenario.base_txns);
}

// --- The fault filesystem itself. ------------------------------------

TEST(CrashRecovery, FaultFileSplitsTheStraddlingWrite) {
  FaultInjectingFileSystem fault_fs;
  FaultPlan plan;
  plan.write_budget = 10;
  fault_fs.set_plan(plan);
  const std::string path = TempPath("fault_split.bin");
  auto file = fault_fs.OpenWritable(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("AAAAAAA", 7).ok());
  // 7 of 10 used: the next write is admitted for 3 bytes, then dies.
  const Status killed = (*file)->Append("BBBBBBB", 7);
  EXPECT_FALSE(killed.ok());
  EXPECT_TRUE(fault_fs.triggered());
  EXPECT_EQ(fault_fs.bytes_written(), 10u);
  // The admitted prefix reached the disk even though the handle was
  // never cleanly closed — the crash model's contract.
  EXPECT_EQ(ReadFileBytes(path), "AAAAAAABBB");
  // Everything else on a crashed filesystem fails.
  EXPECT_FALSE((*file)->Append("C", 1).ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(fault_fs.Remove(path).ok());
  EXPECT_FALSE(fault_fs.Rename(path, path + "2").ok());
}

}  // namespace
}  // namespace flipper
