// FlipperStore tests: byte-level round trips (basket -> .fdb -> mine
// is bit-identical to mining the text inputs, serial and parallel),
// the streaming writer against the bulk path, borrowed-view semantics,
// and a corruption battery — every malformed file must come back as a
// Status error, never a crash.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/flipper_miner.h"
#include "core/pattern_io.h"
#include "data/db_io.h"
#include "storage/format.h"
#include "storage/store_reader.h"
#include "storage/store_writer.h"
#include "storage/varint.h"
#include "taxonomy/taxonomy_io.h"
#include "test_util.h"

namespace flipper {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f) << path;
  std::ostringstream oss;
  oss << f.rdbuf();
  return oss.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f) << path;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

storage::FileHeader* HeaderOf(std::string* bytes) {
  return reinterpret_cast<storage::FileHeader*>(bytes->data());
}

storage::SectionEntry* SectionOf(std::string* bytes,
                                 storage::SectionId id) {
  auto* table = reinterpret_cast<storage::SectionEntry*>(
      bytes->data() + sizeof(storage::FileHeader));
  for (uint32_t i = 0; i < HeaderOf(bytes)->section_count; ++i) {
    if (table[i].id == static_cast<uint32_t>(id)) return &table[i];
  }
  return nullptr;
}

/// Recomputes section, table and header checksums so a deliberately
/// patched payload exercises the deep validation scan rather than the
/// checksum gates.
void FixChecksums(std::string* bytes) {
  auto* header = HeaderOf(bytes);
  auto* table = reinterpret_cast<storage::SectionEntry*>(
      bytes->data() + sizeof(storage::FileHeader));
  for (uint32_t i = 0; i < header->section_count; ++i) {
    // A section the test pointed outside the file cannot be hashed;
    // the reader rejects it on bounds before any checksum check.
    if (table[i].offset > bytes->size() ||
        table[i].size > bytes->size() - table[i].offset) {
      continue;
    }
    table[i].checksum = storage::Fnv1a64(
        bytes->data() + table[i].offset,
        static_cast<size_t>(table[i].size));
  }
  header->table_checksum = storage::Fnv1a64(
      table, header->section_count * sizeof(storage::SectionEntry));
  header->header_checksum = storage::HeaderChecksum(*header);
}

/// Mines and serializes to the CSV export (the CLI's machine format);
/// byte equality of two of these is the round-trip criterion.
std::string MineToCsv(const TransactionDb& db, const Taxonomy& taxonomy,
                      const ItemDictionary& dict, int threads) {
  MiningConfig config;
  config.gamma = 0.45;
  config.epsilon = 0.2;
  config.min_support = {0.003, 0.002, 0.002};
  config.num_threads = threads;
  auto result = FlipperMiner::Run(db, taxonomy, config);
  EXPECT_TRUE(result.ok()) << result.status();
  std::ostringstream oss;
  EXPECT_TRUE(WritePatternsCsv(result->patterns, &dict, oss).ok());
  return oss.str();
}

/// Text files + .fdb conversion of one randomized dataset, shared by
/// the round-trip tests.
struct ConvertedDataset {
  std::string basket_path;
  std::string taxonomy_path;
  std::string store_path;
  ItemDictionary dict;
  Taxonomy taxonomy;
  TransactionDb db;
};

ConvertedDataset MakeConverted(const std::string& tag) {
  testutil::Dataset data = testutil::RandomDataset(1234, 5, 3, 3, 600, 9);
  ConvertedDataset out;
  out.basket_path = TempPath(tag + ".basket");
  out.taxonomy_path = TempPath(tag + ".taxonomy");
  out.store_path = TempPath(tag + ".fdb");
  EXPECT_TRUE(
      WriteTaxonomyFile(data.taxonomy, data.dict, out.taxonomy_path).ok());
  EXPECT_TRUE(WriteBasketFile(data.db, data.dict, out.basket_path).ok());
  // Reload through the text readers (exactly what the CLI does) so the
  // id assignment matches a fresh `flipper_cli mine <basket> <tax>`.
  auto taxonomy = ReadTaxonomyFile(out.taxonomy_path, &out.dict);
  EXPECT_TRUE(taxonomy.ok()) << taxonomy.status();
  out.taxonomy = std::move(taxonomy).value();
  auto db = ReadBasketFile(out.basket_path, &out.dict);
  EXPECT_TRUE(db.ok()) << db.status();
  out.db = std::move(db).value();
  EXPECT_TRUE(storage::WriteStoreFile(out.store_path, out.db, out.dict,
                                      out.taxonomy)
                  .ok());
  return out;
}

TEST(StorageRoundTrip, MiningIsBitIdenticalAtAnyThreadCount) {
  ConvertedDataset data = MakeConverted("roundtrip");
  auto reader = storage::StoreReader::Open(data.store_path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->db().size(), data.db.size());
  EXPECT_TRUE(reader->db().borrowed());
  EXPECT_TRUE(reader->dict().borrowed());

  for (int threads : {1, 4}) {
    const std::string from_text =
        MineToCsv(data.db, data.taxonomy, data.dict, threads);
    const std::string from_store = MineToCsv(
        reader->db(), reader->taxonomy(), reader->dict(), threads);
    EXPECT_FALSE(from_text.empty());
    EXPECT_EQ(from_text, from_store) << "threads=" << threads;
  }
}

TEST(StorageRoundTrip, BasketReserializationIsByteIdentical) {
  ConvertedDataset data = MakeConverted("reserialize");
  auto reader = storage::StoreReader::Open(data.store_path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const std::string rewritten = TempPath("reserialize2.basket");
  ASSERT_TRUE(
      WriteBasketFile(reader->db(), reader->dict(), rewritten).ok());
  EXPECT_EQ(ReadFileBytes(data.basket_path), ReadFileBytes(rewritten));
}

TEST(StorageRoundTrip, HeapFallbackMatchesMmap) {
  ConvertedDataset data = MakeConverted("heap");
  storage::OpenOptions heap_options;
  heap_options.force_heap = true;
  auto mapped = storage::StoreReader::Open(data.store_path);
  auto heap = storage::StoreReader::Open(data.store_path, heap_options);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  ASSERT_TRUE(heap.ok()) << heap.status();
  EXPECT_FALSE(heap->mapped());
  EXPECT_EQ(
      MineToCsv(mapped->db(), mapped->taxonomy(), mapped->dict(), 1),
      MineToCsv(heap->db(), heap->taxonomy(), heap->dict(), 1));
}

TEST(StorageWriter, StreamingAppendMatchesBulkWrite) {
  testutil::Dataset data = testutil::RandomDataset(9, 3, 2, 3, 120, 5);
  const std::string bulk_path = TempPath("bulk.fdb");
  const std::string stream_path = TempPath("stream.fdb");
  ASSERT_TRUE(storage::WriteStoreFile(bulk_path, data.db, data.dict,
                                      data.taxonomy)
                  .ok());
  auto writer = storage::StoreWriter::Create(stream_path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (TxnId t = 0; t < data.db.size(); ++t) {
    ASSERT_TRUE(writer->Append(data.db.Get(t)).ok());
  }
  ASSERT_TRUE(writer->Finish(data.dict, data.taxonomy).ok());
  EXPECT_EQ(ReadFileBytes(bulk_path), ReadFileBytes(stream_path));
}

TEST(StorageWriter, SegmentBoundariesFollowTheConfiguredSize) {
  testutil::Dataset data = testutil::RandomDataset(5, 3, 2, 3, 100, 5);
  const std::string path = TempPath("segments.fdb");
  storage::StoreWriter::Options options;
  options.segment_txns = 32;
  ASSERT_TRUE(storage::WriteStoreFile(path, data.db, data.dict,
                                      data.taxonomy, options)
                  .ok());
  auto reader = storage::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const auto segments = reader->segments();
  ASSERT_EQ(segments.size(), 5u);  // 100 txns / 32 -> 0,32,64,96,100
  EXPECT_EQ(segments[0], 0u);
  EXPECT_EQ(segments[1], 32u);
  EXPECT_EQ(segments[3], 96u);
  EXPECT_EQ(segments[4], 100u);
}

TEST(StorageBorrowed, MutationMaterializesTheViews) {
  ConvertedDataset data = MakeConverted("borrowed");
  auto reader = storage::StoreReader::Open(data.store_path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  TransactionDb copy = reader->db();  // still borrowed
  EXPECT_TRUE(copy.borrowed());
  const uint32_t before = copy.size();
  copy.Add({0, 1});
  EXPECT_FALSE(copy.borrowed());
  EXPECT_EQ(copy.size(), before + 1);
  for (TxnId t = 0; t < before; ++t) {
    const auto a = reader->db().Get(t);
    const auto b = copy.Get(t);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }

  ItemDictionary dict_copy = reader->dict();
  EXPECT_TRUE(dict_copy.borrowed());
  const std::string name0(dict_copy.Name(0));
  EXPECT_EQ(*dict_copy.Find(name0), 0u);  // linear-scan lookup
  const ItemId added = dict_copy.Intern("brand-new-item");
  EXPECT_FALSE(dict_copy.borrowed());
  EXPECT_EQ(added, reader->dict().size());
  EXPECT_EQ(dict_copy.Name(0), name0);
}

// --- Corruption battery ----------------------------------------------

std::string MakeToyStore(const std::string& tag,
                         uint32_t version = storage::kFormatVersionV1) {
  testutil::Dataset data = testutil::PaperToyDataset();
  const std::string path = TempPath(tag + ".fdb");
  storage::StoreWriter::Options options;
  options.version = version;
  EXPECT_TRUE(storage::WriteStoreFile(path, data.db, data.dict,
                                      data.taxonomy, options)
                  .ok());
  return path;
}

TEST(StorageCorruption, TruncatedHeaderFails) {
  const std::string path = MakeToyStore("trunc_header");
  WriteFileBytes(path, ReadFileBytes(path).substr(0, 10));
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("truncated header"),
            std::string::npos);
}

TEST(StorageCorruption, BadMagicFails) {
  const std::string path = MakeToyStore("magic");
  std::string bytes = ReadFileBytes(path);
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos);
}

TEST(StorageCorruption, UnsupportedVersionFails) {
  const std::string path = MakeToyStore("version");
  std::string bytes = ReadFileBytes(path);
  HeaderOf(&bytes)->version = 99;
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("version"),
            std::string::npos);
}

TEST(StorageCorruption, HeaderBitFlipFailsTheChecksum) {
  const std::string path = MakeToyStore("header_flip");
  std::string bytes = ReadFileBytes(path);
  HeaderOf(&bytes)->num_transactions += 1;  // checksum left stale
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("header checksum"),
            std::string::npos);
}

TEST(StorageCorruption, TruncatedFileFails) {
  const std::string path = MakeToyStore("trunc_file");
  const std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 16));
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("size mismatch"),
            std::string::npos);
}

TEST(StorageCorruption, SectionBeyondEndOfFileFails) {
  const std::string path = MakeToyStore("section_bounds");
  std::string bytes = ReadFileBytes(path);
  SectionOf(&bytes, storage::SectionId::kTxnItems)->offset =
      storage::AlignUp(bytes.size() + 64);
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("past end of file"),
            std::string::npos);
}

TEST(StorageCorruption, OutOfRangeItemFails) {
  const std::string path = MakeToyStore("bad_item");
  std::string bytes = ReadFileBytes(path);
  const auto* items = SectionOf(&bytes, storage::SectionId::kTxnItems);
  ASSERT_NE(items, nullptr);
  uint32_t bogus = HeaderOf(&bytes)->alphabet_size + 100;
  std::memcpy(bytes.data() + items->offset, &bogus, sizeof(bogus));
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("out of range"),
            std::string::npos);
}

TEST(StorageCorruption, NonMonotoneOffsetsFail) {
  const std::string path = MakeToyStore("bad_offsets");
  std::string bytes = ReadFileBytes(path);
  const auto* offsets =
      SectionOf(&bytes, storage::SectionId::kTxnOffsets);
  ASSERT_NE(offsets, nullptr);
  const uint64_t bogus = HeaderOf(&bytes)->num_items + 7;
  std::memcpy(bytes.data() + offsets->offset + sizeof(uint64_t), &bogus,
              sizeof(bogus));
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("not monotone"),
            std::string::npos);
}

TEST(StorageCorruption, TrustedOpenSkipsThePayloadScan) {
  // Same corruption as OutOfRangeItemFails, but validate=false trusts
  // the payload; structural gates still pass, so Open succeeds. (This
  // is the documented contract, not a bug: trusted mode is for files
  // this process just wrote.)
  const std::string path = MakeToyStore("trusted");
  std::string bytes = ReadFileBytes(path);
  const auto* items = SectionOf(&bytes, storage::SectionId::kTxnItems);
  uint32_t bogus = HeaderOf(&bytes)->alphabet_size + 100;
  std::memcpy(bytes.data() + items->offset, &bogus, sizeof(bogus));
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  storage::OpenOptions trusting;
  trusting.validate = false;
  EXPECT_TRUE(storage::StoreReader::Open(path, trusting).ok());
  EXPECT_FALSE(storage::StoreReader::Open(path).ok());
}

TEST(StorageCorruption, VerifyChecksumsCatchesPayloadBitrot) {
  const std::string path = MakeToyStore("bitrot");
  std::string bytes = ReadFileBytes(path);
  // Flip a byte inside the name blob: no structural check looks at
  // name bytes, so Open succeeds and only the checksum sweep trips.
  const auto* blob = SectionOf(&bytes, storage::SectionId::kDictBlob);
  ASSERT_NE(blob, nullptr);
  ASSERT_GT(blob->size, 0u);
  bytes[blob->offset] ^= 0x20;
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  Status verified = reader->VerifyChecksums();
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.code(), StatusCode::kCorruptedData);
  EXPECT_NE(verified.message().find("dict_blob"), std::string::npos);
}

// --- v2: round trips, catalog semantics, corruption battery ---------

TEST(StorageV2, RoundTripMatchesV1AndTextAtAnyThreadCount) {
  // MakeConverted writes the default (latest = v2) store.
  ConvertedDataset data = MakeConverted("v2_roundtrip");
  const std::string v1_path = TempPath("v2_roundtrip_v1.fdb");
  storage::StoreWriter::Options v1_options;
  v1_options.version = storage::kFormatVersionV1;
  ASSERT_TRUE(storage::WriteStoreFile(v1_path, data.db, data.dict,
                                      data.taxonomy, v1_options)
                  .ok());

  auto v2 = storage::StoreReader::Open(data.store_path);
  auto v1 = storage::StoreReader::Open(v1_path);
  ASSERT_TRUE(v2.ok()) << v2.status();
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ(v2->version(), storage::kFormatVersionV2);
  EXPECT_EQ(v1->version(), storage::kFormatVersionV1);
  EXPECT_LT(v2->file_size(), v1->file_size());  // varint columns shrink

  for (int threads : {1, 4}) {
    const std::string from_text =
        MineToCsv(data.db, data.taxonomy, data.dict, threads);
    EXPECT_FALSE(from_text.empty());
    EXPECT_EQ(from_text,
              MineToCsv(v1->db(), v1->taxonomy(), v1->dict(), threads))
        << "v1 threads=" << threads;
    EXPECT_EQ(from_text,
              MineToCsv(v2->db(), v2->taxonomy(), v2->dict(), threads))
        << "v2 threads=" << threads;
  }
}

TEST(StorageV2, CatalogIsExposedAndExact) {
  testutil::Dataset data = testutil::RandomDataset(77, 4, 2, 3, 400, 7);
  const std::string path = TempPath("v2_catalog.fdb");
  storage::StoreWriter::Options options;
  options.segment_txns = 64;
  ASSERT_TRUE(storage::WriteStoreFile(path, data.db, data.dict,
                                      data.taxonomy, options)
                  .ok());
  auto reader = storage::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const SegmentCatalog* catalog = reader->catalog();
  ASSERT_NE(catalog, nullptr);
  EXPECT_EQ(reader->db().segment_catalog().get(), catalog);
  ASSERT_EQ(catalog->num_segments(), reader->segments().size() - 1);
  ASSERT_TRUE(std::equal(catalog->boundaries().begin(),
                         catalog->boundaries().end(),
                         reader->segments().begin(),
                         reader->segments().end()));

  // One-sided exactness: an item the catalog rules out must truly be
  // absent; every present item must be possible. Tracked supports are
  // exact per construction.
  for (size_t seg = 0; seg < catalog->num_segments(); ++seg) {
    std::vector<uint32_t> present(reader->db().alphabet_size(), 0);
    for (uint64_t t = catalog->boundaries()[seg];
         t < catalog->boundaries()[seg + 1]; ++t) {
      for (ItemId item : reader->db().Get(static_cast<TxnId>(t))) {
        ++present[item];
      }
    }
    for (ItemId item = 0; item < present.size(); ++item) {
      if (present[item] > 0) {
        EXPECT_TRUE(catalog->MayContain(seg, item))
            << "seg " << seg << " item " << item;
      } else {
        // MayContain may report false positives, never negatives;
        // nothing to assert for absent items.
      }
      const auto tracked = catalog->TrackedSupport(seg, item);
      if (tracked.has_value()) {
        EXPECT_EQ(*tracked, present[item])
            << "seg " << seg << " item " << item;
      }
    }
  }
}

TEST(StorageV2, V1StoreCarriesNoCatalog) {
  const std::string path = MakeToyStore("v1_no_catalog");
  auto reader = storage::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->catalog(), nullptr);
  EXPECT_EQ(reader->db().segment_catalog(), nullptr);
}

TEST(StorageV2, HeapFallbackMatchesMmap) {
  ConvertedDataset data = MakeConverted("v2_heap");
  storage::OpenOptions heap_options;
  heap_options.force_heap = true;
  auto mapped = storage::StoreReader::Open(data.store_path);
  auto heap = storage::StoreReader::Open(data.store_path, heap_options);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  ASSERT_TRUE(heap.ok()) << heap.status();
  EXPECT_FALSE(heap->mapped());
  EXPECT_EQ(
      MineToCsv(mapped->db(), mapped->taxonomy(), mapped->dict(), 1),
      MineToCsv(heap->db(), heap->taxonomy(), heap->dict(), 1));
}

TEST(StorageV2, EmptyDatabaseRoundTrips) {
  testutil::Dataset data = testutil::PaperToyDataset();
  TransactionDb empty_db;
  for (uint32_t version :
       {storage::kFormatVersionV1, storage::kFormatVersionV2}) {
    const std::string path =
        TempPath("empty_v" + std::to_string(version) + ".fdb");
    storage::StoreWriter::Options options;
    options.version = version;
    ASSERT_TRUE(storage::WriteStoreFile(path, empty_db, data.dict,
                                        data.taxonomy, options)
                    .ok());
    auto reader = storage::StoreReader::Open(path);
    ASSERT_TRUE(reader.ok()) << "v" << version << ": " << reader.status();
    EXPECT_EQ(reader->db().size(), 0u);
    EXPECT_EQ(reader->dict().size(), data.dict.size());
    EXPECT_TRUE(reader->VerifyChecksums().ok());
  }
}

/// Byte offset of the first per-segment record inside the catalog
/// payload (past the catalog header and the tracked-id table).
size_t CatalogRecordsOffset(std::string* bytes) {
  const auto* entry = SectionOf(bytes, storage::SectionId::kSegCatalog);
  EXPECT_NE(entry, nullptr);
  storage::SegCatalogHeader ch;
  std::memcpy(&ch, bytes->data() + entry->offset, sizeof(ch));
  return static_cast<size_t>(entry->offset) + sizeof(ch) +
         ch.tracked_count * sizeof(uint32_t);
}

TEST(StorageV2Corruption, TruncatedVarintMidColumnFails) {
  const std::string path =
      MakeToyStore("v2_trunc_varint", storage::kFormatVersionV2);
  std::string bytes = ReadFileBytes(path);
  const auto* items = SectionOf(&bytes, storage::SectionId::kTxnItems);
  ASSERT_NE(items, nullptr);
  ASSERT_GT(items->size, 0u);
  // Setting the continuation bit on the column's last byte makes the
  // final varint run off the end of the section.
  bytes[items->offset + items->size - 1] |= '\x80';
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("truncated varint"),
            std::string::npos);

  // The decode is always bounds-checked: trusted mode must fail too,
  // never crash or mis-read.
  storage::OpenOptions trusting;
  trusting.validate = false;
  EXPECT_FALSE(storage::StoreReader::Open(path, trusting).ok());
}

TEST(StorageV2Corruption, CatalogSegmentBoundsOutOfRangeFails) {
  const std::string path =
      MakeToyStore("v2_catalog_bounds", storage::kFormatVersionV2);
  std::string bytes = ReadFileBytes(path);
  const size_t record = CatalogRecordsOffset(&bytes);
  const uint32_t bogus_min = 0;
  const uint32_t bogus_max = HeaderOf(&bytes)->alphabet_size + 9;
  std::memcpy(bytes.data() + record, &bogus_min, sizeof(bogus_min));
  std::memcpy(bytes.data() + record + sizeof(uint32_t), &bogus_max,
              sizeof(bogus_max));
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("out-of-range item bounds"),
            std::string::npos);
}

TEST(StorageV2Corruption, CatalogBitsetLengthMismatchFails) {
  const std::string path =
      MakeToyStore("v2_bitset_len", storage::kFormatVersionV2);
  std::string bytes = ReadFileBytes(path);
  const auto* entry = SectionOf(&bytes, storage::SectionId::kSegCatalog);
  ASSERT_NE(entry, nullptr);
  storage::SegCatalogHeader ch;
  std::memcpy(&ch, bytes.data() + entry->offset, sizeof(ch));
  ch.bitset_words += 1;  // section size no longer matches the layout
  std::memcpy(bytes.data() + entry->offset, &ch, sizeof(ch));
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("mismatch"),
            std::string::npos);
}

TEST(StorageV2Corruption, V2HeaderWithV1SectionTableFails) {
  // A v1 file whose header claims version 2: the seven-section table
  // cannot satisfy the v2 layout and must be rejected before any
  // varint decoding is attempted.
  const std::string path =
      MakeToyStore("v2_header_v1_table", storage::kFormatVersionV1);
  std::string bytes = ReadFileBytes(path);
  HeaderOf(&bytes)->version = storage::kFormatVersionV2;
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("8 sections"),
            std::string::npos);
}

TEST(StorageV2Corruption, LyingCatalogIsRejectedByValidation) {
  // Zero a segment's bitset: the structural checks still pass, but a
  // scan consulting it would wrongly skip the segment, so validation
  // must catch the disagreement with the items column.
  const std::string path =
      MakeToyStore("v2_lying_catalog", storage::kFormatVersionV2);
  std::string bytes = ReadFileBytes(path);
  const size_t record = CatalogRecordsOffset(&bytes);
  storage::SegCatalogHeader ch;
  std::memcpy(&ch,
              bytes.data() +
                  SectionOf(&bytes, storage::SectionId::kSegCatalog)
                      ->offset,
              sizeof(ch));
  std::memset(bytes.data() + record + 2 * sizeof(uint32_t), 0,
              ch.bitset_words * sizeof(uint64_t));
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("disagrees"),
            std::string::npos);
}

TEST(StorageV2Corruption, HugeClaimedCountsFailBeforeAllocating) {
  // A corrupt header claiming 2^32-1 transactions (with the segments
  // section patched to agree) must be rejected by the cheap
  // size-vs-section bound, not by a multi-gigabyte reserve() that
  // escapes as bad_alloc.
  const std::string path =
      MakeToyStore("v2_huge_counts", storage::kFormatVersionV2);
  std::string bytes = ReadFileBytes(path);
  const uint64_t huge = 0xFFFFFFFFull;
  HeaderOf(&bytes)->num_transactions = huge;
  const auto* segments = SectionOf(&bytes, storage::SectionId::kSegments);
  ASSERT_NE(segments, nullptr);
  std::memcpy(bytes.data() + segments->offset + sizeof(uint64_t), &huge,
              sizeof(huge));
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("too small"),
            std::string::npos);
}

TEST(StorageV2Corruption, WraparoundGapFailsEvenTrusted) {
  // A 10-byte varint gap of 2^64-1 makes `item += delta` wrap to
  // item-1: in range, nonzero gap — but the decoded transaction is
  // unsorted. The decoder must reject oversized gaps outright, in
  // trusted mode too (this is the "never mis-mine" guarantee).
  const std::string path =
      MakeToyStore("v2_wrap_gap", storage::kFormatVersionV2);
  std::string bytes = ReadFileBytes(path);

  // Re-encode the whole items column with txn 0's first gap replaced
  // by the wraparound value, append it as a fresh section payload (so
  // no other offsets move), and point the section entry at it.
  std::vector<uint8_t> encoded;
  {
    auto reader = storage::StoreReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status();
    for (TxnId t = 0; t < reader->db().size(); ++t) {
      const auto txn = reader->db().Get(t);
      for (size_t i = 0; i < txn.size(); ++i) {
        if (t == 0 && i == 1) {
          storage::PutVarint(~uint64_t{0}, &encoded);  // txn[0] - 1
        } else {
          storage::PutVarint(i == 0 ? txn[i] : txn[i] - txn[i - 1],
                             &encoded);
        }
      }
    }
  }

  const uint64_t new_offset = storage::AlignUp(bytes.size());
  bytes.resize(new_offset, '\0');
  bytes.append(reinterpret_cast<const char*>(encoded.data()),
               encoded.size());
  auto* items = SectionOf(&bytes, storage::SectionId::kTxnItems);
  ASSERT_NE(items, nullptr);
  items->offset = new_offset;
  items->size = encoded.size();
  HeaderOf(&bytes)->file_size = bytes.size();
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);

  auto validated = storage::StoreReader::Open(path);
  ASSERT_FALSE(validated.ok());
  EXPECT_EQ(validated.status().code(), StatusCode::kCorruptedData);
  storage::OpenOptions trusting;
  trusting.validate = false;
  auto trusted = storage::StoreReader::Open(path, trusting);
  ASSERT_FALSE(trusted.ok());
  EXPECT_EQ(trusted.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(trusted.status().message().find("gap"), std::string::npos)
      << trusted.status();
}

TEST(StorageV2Corruption, NonCanonicalGapFails) {
  // A zero gap inside a transaction means duplicate/unsorted items.
  const std::string path =
      MakeToyStore("v2_zero_gap", storage::kFormatVersionV2);
  std::string bytes = ReadFileBytes(path);
  const auto* items = SectionOf(&bytes, storage::SectionId::kTxnItems);
  ASSERT_NE(items, nullptr);
  // The toy store's first transaction has four items; its second
  // varint is the first gap. Every toy item id fits one byte, so the
  // gap byte sits at offset 1.
  bytes[items->offset + 1] = '\x00';
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);
  EXPECT_NE(reader.status().message().find("not sorted"),
            std::string::npos);
}

TEST(StorageCorruption, EmptyAndGarbageFilesFailCleanly) {
  const std::string empty = TempPath("empty.fdb");
  WriteFileBytes(empty, "");
  EXPECT_FALSE(storage::StoreReader::Open(empty).ok());

  const std::string garbage = TempPath("garbage.fdb");
  WriteFileBytes(garbage, std::string(4096, '\x5a'));
  auto reader = storage::StoreReader::Open(garbage);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruptedData);

  EXPECT_FALSE(
      storage::StoreReader::Open(TempPath("missing_file.fdb")).ok());
}

// --- Append sessions -------------------------------------------------

/// Writes the first `base_txns` transactions of `data` as a fresh v2
/// store at `path`.
void WriteBaseStore(const std::string& path, const testutil::Dataset& data,
                    uint64_t base_txns, uint32_t segment_txns) {
  storage::StoreWriter::Options options;
  options.segment_txns = segment_txns;
  auto writer = storage::StoreWriter::Create(path, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (uint64_t t = 0; t < base_txns; ++t) {
    ASSERT_TRUE(writer->Append(data.db.Get(t)).ok());
  }
  ASSERT_TRUE(writer->Finish(data.dict, data.taxonomy).ok());
}

/// Appends transactions [from, to) of `data` as one session.
void AppendSession(const std::string& path, const testutil::Dataset& data,
                   uint64_t from, uint64_t to) {
  auto writer = storage::StoreWriter::OpenAppend(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (uint64_t t = from; t < to; ++t) {
    ASSERT_TRUE(writer->Append(data.db.Get(t)).ok());
  }
  EXPECT_EQ(writer->appended_transactions(), to - from);
  ASSERT_TRUE(writer->Finish(data.dict, data.taxonomy).ok());
}

TEST(StorageAppend, AppendThenMineEqualsRebuildThenMine) {
  const testutil::Dataset data =
      testutil::RandomDataset(4321, 4, 2, 3, 90, 6);
  const std::string appended_path = TempPath("append_grow.fdb");
  const std::string rebuilt_path = TempPath("append_rebuild.fdb");
  WriteBaseStore(appended_path, data, 60, /*segment_txns=*/16);
  AppendSession(appended_path, data, 60, 90);

  storage::StoreWriter::Options options;
  options.segment_txns = 16;
  ASSERT_TRUE(storage::WriteStoreFile(rebuilt_path, data.db, data.dict,
                                      data.taxonomy, options)
                  .ok());

  auto appended = storage::StoreReader::Open(appended_path);
  auto rebuilt = storage::StoreReader::Open(rebuilt_path);
  ASSERT_TRUE(appended.ok()) << appended.status();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(appended->VerifyChecksums().ok());

  // Layout: one extra block pair, table relocated to the trailer.
  EXPECT_EQ(appended->header().section_count,
            storage::kNumSectionsV2 + 2);
  EXPECT_NE(appended->header().table_offset, 0u);
  EXPECT_EQ(appended->db().size(), 90u);
  ASSERT_NE(appended->catalog(), nullptr);
  // The appended transactions land in fresh segments after the base's
  // [0,16,32,48,60]; the 30 new ones cut at 16 -> [76, 90].
  const std::vector<uint64_t> boundaries(appended->segments().begin(),
                                         appended->segments().end());
  EXPECT_EQ(boundaries,
            (std::vector<uint64_t>{0, 16, 32, 48, 60, 76, 90}));

  for (const int threads : {1, 4}) {
    const std::string expected =
        MineToCsv(data.db, data.taxonomy, data.dict, threads);
    EXPECT_EQ(MineToCsv(appended->db(), appended->taxonomy(),
                        appended->dict(), threads),
              expected)
        << "appended store diverged at " << threads << " thread(s)";
    EXPECT_EQ(MineToCsv(rebuilt->db(), rebuilt->taxonomy(),
                        rebuilt->dict(), threads),
              expected)
        << "rebuilt store diverged at " << threads << " thread(s)";
  }
}

TEST(StorageAppend, EverySessionAddsABlockPair) {
  const testutil::Dataset data =
      testutil::RandomDataset(99, 3, 2, 2, 60, 5);
  const std::string path = TempPath("append_multi.fdb");
  WriteBaseStore(path, data, 30, /*segment_txns=*/8);
  AppendSession(path, data, 30, 45);
  AppendSession(path, data, 45, 60);

  auto reader = storage::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->header().section_count, storage::kNumSectionsV2 + 4);
  EXPECT_EQ(reader->db().size(), 60u);
  EXPECT_TRUE(reader->VerifyChecksums().ok());
  EXPECT_EQ(MineToCsv(reader->db(), reader->taxonomy(), reader->dict(), 1),
            MineToCsv(data.db, data.taxonomy, data.dict, 1));
}

TEST(StorageAppend, EmptyAppendSessionCommitsCleanly) {
  const testutil::Dataset data = testutil::PaperToyDataset();
  const std::string path = TempPath("append_empty.fdb");
  WriteBaseStore(path, data, data.db.size(), /*segment_txns=*/4);
  const std::string base_csv =
      MineToCsv(data.db, data.taxonomy, data.dict, 1);
  AppendSession(path, data, data.db.size(), data.db.size());

  auto reader = storage::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->db().size(), data.db.size());
  EXPECT_EQ(reader->header().section_count, storage::kNumSectionsV2 + 2);
  EXPECT_TRUE(reader->VerifyChecksums().ok());
  EXPECT_EQ(MineToCsv(reader->db(), reader->taxonomy(), reader->dict(), 1),
            base_csv);
}

TEST(StorageAppend, DictionaryGrowthPersists) {
  const testutil::Dataset data = testutil::PaperToyDataset();
  const std::string path = TempPath("append_dict_grow.fdb");
  WriteBaseStore(path, data, data.db.size(), /*segment_txns=*/4);

  ItemDictionary grown = data.dict;
  const ItemId new_id = grown.Intern("zz_brand_new_name");
  EXPECT_EQ(new_id, grown.size() - 1);
  {
    auto writer = storage::StoreWriter::OpenAppend(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(data.db.Get(0)).ok());
    ASSERT_TRUE(writer->Finish(grown, data.taxonomy).ok());
  }
  auto reader = storage::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->dict().size(), grown.size());
  EXPECT_EQ(reader->dict().Name(new_id), "zz_brand_new_name");
}

TEST(StorageAppend, MutatedDictionaryIsRejectedAndRolledBack) {
  const testutil::Dataset data = testutil::PaperToyDataset();
  const std::string path = TempPath("append_dict_mutate.fdb");
  WriteBaseStore(path, data, data.db.size(), /*segment_txns=*/4);
  const std::string base_bytes = ReadFileBytes(path);

  // Same size, different names: committed ids would change meaning.
  ItemDictionary renamed;
  for (ItemId id = 0; id < data.dict.size(); ++id) {
    renamed.Intern("renamed_" + std::to_string(id));
  }
  auto writer = storage::StoreWriter::OpenAppend(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->Append(data.db.Get(0)).ok());
  const Status finished = writer->Finish(renamed, data.taxonomy);
  ASSERT_FALSE(finished.ok());
  EXPECT_NE(finished.message().find("extend"), std::string::npos)
      << finished;
  // The failed session rolled the file back to the base store.
  EXPECT_EQ(ReadFileBytes(path), base_bytes);
  EXPECT_TRUE(storage::StoreReader::Open(path).ok());
  // And the writer refuses further use.
  EXPECT_FALSE(writer->Append(data.db.Get(0)).ok());
}

TEST(StorageAppend, V1StoresAreReadOnly) {
  const testutil::Dataset data = testutil::PaperToyDataset();
  const std::string path = TempPath("append_v1.fdb");
  storage::StoreWriter::Options options;
  options.version = storage::kFormatVersionV1;
  ASSERT_TRUE(storage::WriteStoreFile(path, data.db, data.dict,
                                      data.taxonomy, options)
                  .ok());
  auto writer = storage::StoreWriter::OpenAppend(path);
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(writer.status().message().find("read-only"),
            std::string::npos)
      << writer.status();
}

TEST(StorageAppend, TornStoreRefusesAppendUntilRepaired) {
  const testutil::Dataset data = testutil::PaperToyDataset();
  const std::string path = TempPath("append_torn.fdb");
  WriteBaseStore(path, data, data.db.size(), /*segment_txns=*/4);
  const std::string base_bytes = ReadFileBytes(path);
  WriteFileBytes(path, base_bytes + std::string(33, 'x'));

  auto writer = storage::StoreWriter::OpenAppend(path);
  ASSERT_FALSE(writer.ok());
  EXPECT_NE(writer.status().message().find("repair"), std::string::npos)
      << writer.status();
}

}  // namespace
}  // namespace flipper
