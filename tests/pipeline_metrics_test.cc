// Observability: the MetricsRegistry (core/pipeline_metrics.h) —
// counter/gauge semantics, exact nearest-rank percentiles up to the
// reservoir cap and log-bucket fallback beyond it, the JSON report
// schema, the pool-task observer path (concurrently, the TSan
// target), and a full mining run populating stage and pool metrics
// without changing the mined patterns.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/flipper_miner.h"
#include "core/pattern_io.h"
#include "core/pipeline_metrics.h"
#include "test_util.h"

namespace flipper {
namespace {

TEST(MetricsRegistry, CountersAccumulateAndGaugesOverwrite) {
  MetricsRegistry m;
  EXPECT_EQ(m.counter("absent"), 0);
  EXPECT_EQ(m.gauge("absent"), 0.0);
  m.AddCounter("c", 2);
  m.AddCounter("c", 3);
  m.SetGauge("g", 1.5);
  m.SetGauge("g", 2.5);
  EXPECT_EQ(m.counter("c"), 5);
  EXPECT_DOUBLE_EQ(m.gauge("g"), 2.5);
}

TEST(MetricsRegistry, PercentilesAreExactWithinTheReservoir) {
  MetricsRegistry m;
  // 1..100 ms, shuffled order must not matter for nearest-rank.
  for (int i = 100; i >= 1; --i) {
    m.ObserveMs("lat", static_cast<double>(i));
  }
  const auto snap = m.Snap();
  ASSERT_TRUE(snap.histograms.count("lat"));
  const auto& h = snap.histograms.at("lat");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(h.max_ms, 100.0);
  EXPECT_DOUBLE_EQ(h.sum_ms, 5050.0);
  // Nearest-rank: sorted[ceil(q * n) - 1].
  EXPECT_DOUBLE_EQ(h.p50_ms, 50.0);
  EXPECT_DOUBLE_EQ(h.p95_ms, 95.0);
  EXPECT_DOUBLE_EQ(h.p99_ms, 99.0);
}

TEST(MetricsRegistry, BucketFallbackStaysWithinAFactorOfTwo) {
  MetricsRegistry m;
  const size_t n = MetricsRegistry::kMaxExactSamples + 2000;
  for (size_t i = 0; i < n; ++i) {
    m.ObserveMs("lat", 4.0);
  }
  const auto snap = m.Snap();
  const auto& h = snap.histograms.at("lat");
  EXPECT_EQ(h.count, n);
  EXPECT_DOUBLE_EQ(h.min_ms, 4.0);
  EXPECT_DOUBLE_EQ(h.max_ms, 4.0);
  // Past the reservoir, percentiles come from log2 bucket midpoints:
  // monotone and within 2x of the true value.
  for (const double p : {h.p50_ms, h.p95_ms, h.p99_ms}) {
    EXPECT_GE(p, 2.0);
    EXPECT_LE(p, 8.0);
  }
  EXPECT_LE(h.p50_ms, h.p95_ms);
  EXPECT_LE(h.p95_ms, h.p99_ms);
}

TEST(MetricsRegistry, WriteJsonHasTheDocumentedSchema) {
  MetricsRegistry m;
  m.AddCounter("b.count", 7);
  m.AddCounter("a.count", 1);
  m.SetGauge("g.ratio", 0.25);
  m.ObserveMs("stage.demo_ms", 1.0);
  std::ostringstream out;
  m.WriteJson(out);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"b.count\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"g.ratio\": 0.250000"), std::string::npos);
  // Keys are sorted — a.count precedes b.count.
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));
  // The histogram carries the full percentile set.
  for (const char* field : {"\"count\":", "\"sum_ms\":", "\"min_ms\":",
                            "\"max_ms\":", "\"p50_ms\":", "\"p95_ms\":",
                            "\"p99_ms\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // First and last characters form a JSON object.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline after
}

TEST(MetricsRegistry, ScopedStageTimerRecordsWallAndCpu) {
  MetricsRegistry m;
  {
    ScopedStageTimer timer(&m, "demo");
    // Busy loop long enough to be visible on both clocks.
    volatile uint64_t acc = 0;
    for (int i = 0; i < 2'000'000; ++i) acc += static_cast<uint64_t>(i);
  }
  const auto snap = m.Snap();
  ASSERT_TRUE(snap.histograms.count("stage.demo_ms"));
  ASSERT_TRUE(snap.histograms.count("stage.demo_cpu_ms"));
  EXPECT_EQ(snap.histograms.at("stage.demo_ms").count, 1u);
  EXPECT_GT(snap.histograms.at("stage.demo_ms").sum_ms, 0.0);
  // Null registry: completely inert.
  ScopedStageTimer inert(nullptr, "demo");
}

TEST(MetricsRegistry, PoolObserverAccumulatesAndFinalizes) {
  MetricsRegistry m;
  m.OnPoolTask(/*queue_ns=*/1'000'000, /*run_ns=*/2'000'000);
  m.OnPoolTask(/*queue_ns=*/3'000'000, /*run_ns=*/4'000'000);
  EXPECT_EQ(m.pool_tasks(), 2u);
  EXPECT_EQ(m.pool_busy_ns(), 6'000'000u);

  m.FinalizePool(/*wall_ms=*/10.0, /*num_threads=*/2);
  EXPECT_EQ(m.counter("pool.tasks"), 2);
  EXPECT_DOUBLE_EQ(m.gauge("pool.busy_ms"), 6.0);
  EXPECT_DOUBLE_EQ(m.gauge("pool.queue_wait_ms_total"), 4.0);
  EXPECT_DOUBLE_EQ(m.gauge("pool.queue_wait_ms_max"), 3.0);
  // busy / (wall * threads) = 6 / 20.
  EXPECT_DOUBLE_EQ(m.gauge("pool.utilization"), 0.3);
  // The histogram records one sample per run: the mean queue wait
  // (per-task samples would require locking on the observer path).
  const auto snap = m.Snap();
  const auto& h = snap.histograms.at("pool.queue_wait_ms");
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.sum_ms, 2.0);  // (1 ms + 3 ms) / 2 tasks
}

TEST(MetricsRegistry, UtilizationIsClampedToOne) {
  MetricsRegistry m;
  m.OnPoolTask(0, 50'000'000);  // 50 ms busy in a 10 ms wall window
  m.FinalizePool(/*wall_ms=*/10.0, /*num_threads=*/1);
  EXPECT_DOUBLE_EQ(m.gauge("pool.utilization"), 1.0);
}

// TSan target: concurrent counters/gauges/histograms plus the
// atomics-only observer path from many threads at once.
TEST(MetricsRegistry, ConcurrentRecordingIsSafe) {
  MetricsRegistry m;
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m, t] {
      for (int i = 0; i < kOps; ++i) {
        m.AddCounter("c", 1);
        m.ObserveMs("lat", static_cast<double>(t + 1));
        m.OnPoolTask(1000, 2000);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(m.counter("c"), kThreads * kOps);
  EXPECT_EQ(m.pool_tasks(),
            static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(m.Snap().histograms.at("lat").count,
            static_cast<uint64_t>(kThreads) * kOps);
}

// The observer plugged into a real pool: every submitted task is
// observed with plausible queue/run times.
TEST(MetricsRegistry, ObservesRealPoolTasks) {
  MetricsRegistry m;
  ThreadPool pool(3);
  pool.set_observer(&m);
  constexpr int kTasks = 64;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(m.pool_tasks(), static_cast<uint64_t>(kTasks));
}

std::string PatternsCsv(const MiningResult& result) {
  std::ostringstream out;
  EXPECT_TRUE(WritePatternsCsv(result.patterns, nullptr, out).ok());
  return out.str();
}

TEST(MetricsRegistry, MiningPopulatesTheRegistryWithoutChangingOutput) {
  testutil::Dataset data = testutil::RandomDataset(7);
  MiningConfig config;
  config.gamma = 0.4;
  config.epsilon = 0.2;
  config.min_support = {0.05, 0.02, 0.02};
  config.num_threads = 4;

  auto plain = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(plain.ok()) << plain.status();

  MetricsRegistry m;
  config.metrics = &m;
  auto measured = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(measured.ok()) << measured.status();

  EXPECT_EQ(PatternsCsv(*plain), PatternsCsv(*measured));

  // The MiningStats counters were absorbed 1:1.
  const MiningStats& stats = measured->stats;
  EXPECT_EQ(m.counter("mine.cells"),
            static_cast<int64_t>(stats.cells.size()));
  EXPECT_EQ(m.counter("mine.candidates_generated"),
            static_cast<int64_t>(stats.total_generated));
  EXPECT_EQ(m.counter("mine.candidates_counted"),
            static_cast<int64_t>(stats.total_counted));
  EXPECT_EQ(m.counter("mine.db_scans"),
            static_cast<int64_t>(stats.db_scans));
  EXPECT_EQ(m.counter("mine.scan_cell_scans"),
            static_cast<int64_t>(stats.scan_cell_scans));
  EXPECT_EQ(m.counter("mine.segments_skipped"),
            static_cast<int64_t>(stats.segments_skipped));
  EXPECT_EQ(m.counter("mine.txns_prefiltered"),
            static_cast<int64_t>(stats.txns_prefiltered));
  EXPECT_EQ(m.counter("mine.positive_itemsets"),
            static_cast<int64_t>(stats.num_positive));
  EXPECT_EQ(m.counter("mine.negative_itemsets"),
            static_cast<int64_t>(stats.num_negative));
  EXPECT_EQ(m.counter("mine.sibp_banned_items"),
            static_cast<int64_t>(stats.sibp_banned_items));
  EXPECT_EQ(m.counter("mine.peak_candidate_bytes"),
            static_cast<int64_t>(stats.peak_candidate_bytes));

  // Stage histograms and pool metrics exist with plausible values.
  const auto snap = m.Snap();
  for (const char* name :
       {"stage.pool_start_ms", "stage.views_build_ms",
        "stage.singletons_ms", "stage.count_wait_ms",
        "stage.evaluate_ms", "stage.assemble_ms"}) {
    EXPECT_TRUE(snap.histograms.count(name)) << name;
  }
  EXPECT_GT(m.counter("pool.tasks"), 0);
  EXPECT_GT(m.gauge("mine.total_ms"), 0.0);
  const double utilization = m.gauge("pool.utilization");
  EXPECT_GT(utilization, 0.0);
  EXPECT_LE(utilization, 1.0);

  // Speculation tallies are consistent: adoption rates only exist
  // when the corresponding totals are non-zero, and lie in [0, 1].
  for (const char* gauge_name :
       {"pipeline.spec_adoption_rate", "pipeline.cross_adoption_rate"}) {
    if (snap.gauges.count(gauge_name)) {
      EXPECT_GE(snap.gauges.at(gauge_name), 0.0);
      EXPECT_LE(snap.gauges.at(gauge_name), 1.0);
    }
  }

  // The JSON report round-trips the same names.
  std::ostringstream out;
  m.WriteJson(out);
  EXPECT_NE(out.str().find("\"mine.cells\""), std::string::npos);
  EXPECT_NE(out.str().find("\"stage.count_wait_ms\""),
            std::string::npos);
}

}  // namespace
}  // namespace flipper
