// Generators: balanced taxonomies, the Quest-style generator, template
// mixtures — determinism, parameter validation and basic statistics.

#include <gtest/gtest.h>

#include "datagen/quest_gen.h"
#include "datagen/taxonomy_gen.h"
#include "datagen/template_mixture.h"

namespace flipper {
namespace {

TEST(TaxonomyGen, BalancedShape) {
  TaxonomyGenParams params;
  params.num_roots = 10;
  params.fanout = 5;
  params.depth = 4;
  ItemDictionary dict;
  auto tax = GenerateBalancedTaxonomy(params, &dict);
  ASSERT_TRUE(tax.ok()) << tax.status();
  EXPECT_EQ(tax->height(), 4);
  EXPECT_EQ(tax->Level1().size(), 10u);
  EXPECT_EQ(tax->Leaves().size(), 10u * 5 * 5 * 5);
  EXPECT_TRUE(tax->Validate().ok());
  // 10 + 50 + 250 + 1250 nodes named.
  EXPECT_EQ(dict.size(), 1560u);
}

TEST(TaxonomyGen, ValidatesParams) {
  ItemDictionary dict;
  TaxonomyGenParams bad;
  bad.num_roots = 0;
  EXPECT_FALSE(GenerateBalancedTaxonomy(bad, &dict).ok());
  bad = {};
  bad.depth = 0;
  EXPECT_FALSE(GenerateBalancedTaxonomy(bad, &dict).ok());
  bad = {};
  bad.depth = 3;
  bad.fanout = 0;
  EXPECT_FALSE(GenerateBalancedTaxonomy(bad, &dict).ok());
}

TEST(QuestGen, DeterministicForSameSeed) {
  ItemDictionary dict;
  TaxonomyGenParams tax_params;
  tax_params.num_roots = 5;
  tax_params.fanout = 3;
  tax_params.depth = 3;
  auto tax = GenerateBalancedTaxonomy(tax_params, &dict);
  ASSERT_TRUE(tax.ok());

  QuestParams params;
  params.num_transactions = 2000;
  params.seed = 77;
  auto db1 = GenerateQuest(params, *tax);
  auto db2 = GenerateQuest(params, *tax);
  ASSERT_TRUE(db1.ok());
  ASSERT_TRUE(db2.ok());
  ASSERT_EQ(db1->size(), db2->size());
  for (TxnId t = 0; t < db1->size(); ++t) {
    auto a = db1->Get(t);
    auto b = db2->Get(t);
    ASSERT_EQ(a.size(), b.size()) << t;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  params.seed = 78;
  auto db3 = GenerateQuest(params, *tax);
  ASSERT_TRUE(db3.ok());
  bool any_diff = db3->total_items() != db1->total_items();
  EXPECT_TRUE(any_diff || db1->size() > 0);
}

TEST(QuestGen, StatisticsTrackParams) {
  ItemDictionary dict;
  TaxonomyGenParams tax_params;
  tax_params.num_roots = 10;
  tax_params.fanout = 5;
  tax_params.depth = 4;
  auto tax = GenerateBalancedTaxonomy(tax_params, &dict);
  ASSERT_TRUE(tax.ok());

  QuestParams params;
  params.num_transactions = 5000;
  params.avg_width = 5.0;
  auto db = GenerateQuest(params, *tax);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->size(), 5000u);
  // Average width in the right ballpark (corruption trims downward).
  EXPECT_GT(db->avg_width(), 2.0);
  EXPECT_LT(db->avg_width(), 9.0);
  // Only leaves appear.
  for (TxnId t = 0; t < 200; ++t) {
    for (ItemId item : db->Get(t)) {
      EXPECT_TRUE(tax->IsLeaf(item));
    }
  }
}

TEST(QuestGen, ValidatesParams) {
  ItemDictionary dict;
  TaxonomyGenParams tax_params;
  tax_params.num_roots = 2;
  tax_params.fanout = 2;
  tax_params.depth = 2;
  auto tax = GenerateBalancedTaxonomy(tax_params, &dict);
  ASSERT_TRUE(tax.ok());

  QuestParams bad;
  bad.avg_width = 0.0;
  EXPECT_FALSE(GenerateQuest(bad, *tax).ok());
  bad = {};
  bad.num_patterns = 0;
  EXPECT_FALSE(GenerateQuest(bad, *tax).ok());
  bad = {};
  bad.correlation = 1.5;
  EXPECT_FALSE(GenerateQuest(bad, *tax).ok());
  bad = {};
  bad.corruption_mean = 1.0;
  EXPECT_FALSE(GenerateQuest(bad, *tax).ok());
}

TEST(TemplateMixture, PlantsCooccurrence) {
  // Template {1,2} dominates: the pair must co-occur far more often
  // than with item 3 (noise).
  TemplateMixtureGenerator gen({{{1, 2}, 1.0}}, {3, 4, 5});
  MixtureParams params;
  params.num_transactions = 2000;
  params.avg_templates_per_txn = 1.0;
  params.avg_noise_items = 0.5;
  auto db = gen.Generate(params);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 2000u);
  const uint32_t joint = db->CountSupport(Itemset{1, 2});
  EXPECT_EQ(joint, 2000u);  // template always present
}

TEST(TemplateMixture, Validation) {
  TemplateMixtureGenerator empty({}, {});
  EXPECT_FALSE(empty.Generate({}).ok());
  TemplateMixtureGenerator bad_weight({{{1}, 0.0}}, {});
  EXPECT_FALSE(bad_weight.Generate({}).ok());
}

TEST(TemplateMixture, Deterministic) {
  TemplateMixtureGenerator gen({{{1, 2}, 1.0}, {{3}, 2.0}}, {4, 5});
  MixtureParams params;
  params.num_transactions = 500;
  params.seed = 5;
  auto a = gen.Generate(params);
  auto b = gen.Generate(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_items(), b->total_items());
}

}  // namespace
}  // namespace flipper
