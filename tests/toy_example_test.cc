// Golden tests against the paper's worked examples: the Figure-4 toy
// database, the Figure-5 flipping pattern, and the Kulc values quoted
// in Example 3.

#include <gtest/gtest.h>

#include "core/flipper_miner.h"
#include "core/naive_miner.h"
#include "measures/measure.h"
#include "test_util.h"

namespace flipper {
namespace {

using testutil::Dataset;
using testutil::PaperToyDataset;

MiningConfig ToyConfig() {
  MiningConfig config;
  config.gamma = 0.6;
  config.epsilon = 0.35;
  config.min_support = {0.1, 0.1, 0.1};  // count threshold 1
  config.measure = MeasureKind::kKulczynski;
  return config;
}

TEST(ToyExample, TaxonomyShape) {
  Dataset data = PaperToyDataset();
  EXPECT_EQ(data.taxonomy.height(), 3);
  EXPECT_EQ(data.taxonomy.Level1().size(), 2u);
  EXPECT_EQ(data.taxonomy.Leaves().size(), 8u);
  EXPECT_EQ(data.db.size(), 10u);
}

// Example 3's correlation chain for {a11, b11}:
//   level 3: Kulc = 1.0, level 2: Kulc = 1/3, level 1: Kulc ~ 0.826.
TEST(ToyExample, KulcChainValues) {
  Dataset data = PaperToyDataset();
  auto id = [&](const char* name) { return *data.dict.Find(name); };

  // Level 3.
  const Itemset leaf = Itemset::Pair(id("a11"), id("b11"));
  EXPECT_EQ(data.db.CountSupport(leaf), 2u);
  EXPECT_DOUBLE_EQ(Correlation2(MeasureKind::kKulczynski, 2, 2, 2), 1.0);

  // Level 2: generalized supports.
  const std::vector<ItemId> lut2 = data.taxonomy.LevelMap(2);
  TransactionDb db2 = data.db.Generalize(lut2);
  const Itemset mid = Itemset::Pair(id("a1"), id("b1"));
  EXPECT_EQ(db2.CountSupport(mid), 2u);
  EXPECT_EQ(db2.CountSupport(Itemset::Single(id("a1"))), 6u);
  EXPECT_EQ(db2.CountSupport(Itemset::Single(id("b1"))), 6u);
  EXPECT_NEAR(Correlation2(MeasureKind::kKulczynski, 2, 6, 6), 1.0 / 3.0,
              1e-12);

  // Level 1.
  const std::vector<ItemId> lut1 = data.taxonomy.LevelMap(1);
  TransactionDb db1 = data.db.Generalize(lut1);
  const Itemset top = Itemset::Pair(id("a"), id("b"));
  EXPECT_EQ(db1.CountSupport(top), 7u);
  EXPECT_EQ(db1.CountSupport(Itemset::Single(id("a"))), 8u);
  EXPECT_EQ(db1.CountSupport(Itemset::Single(id("b"))), 9u);
  EXPECT_NEAR(Correlation2(MeasureKind::kKulczynski, 7, 8, 9),
              (7.0 / 8.0 + 7.0 / 9.0) / 2.0, 1e-12);
}

// Figure 5: {a11, b11} is the only flipping pattern, with labels
// POS (level 1) / NEG (level 2) / POS (level 3).
TEST(ToyExample, FlipperFindsExactlyTheFigure5Pattern) {
  Dataset data = PaperToyDataset();
  auto result = FlipperMiner::Run(data.db, data.taxonomy, ToyConfig());
  ASSERT_TRUE(result.ok()) << result.status();

  ASSERT_EQ(result->patterns.size(), 1u);
  const FlippingPattern& p = result->patterns[0];
  EXPECT_EQ(data.dict.Render(p.leaf_itemset), "{a11, b11}");
  ASSERT_EQ(p.chain.size(), 3u);
  EXPECT_EQ(p.chain[0].label, Label::kPositive);
  EXPECT_EQ(p.chain[1].label, Label::kNegative);
  EXPECT_EQ(p.chain[2].label, Label::kPositive);
  EXPECT_TRUE(p.IsValidFlip());
  EXPECT_EQ(data.dict.Render(p.chain[0].itemset), "{a, b}");
  EXPECT_EQ(data.dict.Render(p.chain[1].itemset), "{a1, b1}");
  EXPECT_EQ(p.chain[0].support, 7u);
  EXPECT_EQ(p.chain[1].support, 2u);
  EXPECT_EQ(p.chain[2].support, 2u);
}

TEST(ToyExample, NaiveAgreesWithFlipper) {
  Dataset data = PaperToyDataset();
  auto naive = NaiveMiner::Run(data.db, data.taxonomy, ToyConfig());
  ASSERT_TRUE(naive.ok()) << naive.status();
  auto flip = FlipperMiner::Run(data.db, data.taxonomy, ToyConfig());
  ASSERT_TRUE(flip.ok()) << flip.status();
  EXPECT_TRUE(SamePatterns(naive->patterns, flip->patterns));
  ASSERT_EQ(naive->patterns.size(), 1u);
}

TEST(ToyExample, AllPruningConfigsAgree) {
  Dataset data = PaperToyDataset();
  MiningConfig config = ToyConfig();
  auto reference = NaiveMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(reference.ok());
  for (PruningOptions pruning :
       {PruningOptions::Basic(), PruningOptions::FlippingOnly(),
        PruningOptions::FlippingTpg(), PruningOptions::Full()}) {
    config.pruning = pruning;
    auto result = FlipperMiner::Run(data.db, data.taxonomy, config);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(SamePatterns(reference->patterns, result->patterns))
        << "pruning=" << pruning.ToString();
  }
}

TEST(ToyExample, VerticalCounterAgrees) {
  Dataset data = PaperToyDataset();
  MiningConfig config = ToyConfig();
  config.counter = CounterKind::kVertical;
  auto result = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->patterns.size(), 1u);
  EXPECT_EQ(data.dict.Render(result->patterns[0].leaf_itemset),
            "{a11, b11}");
}

// Raising gamma above 1.0's reach or tightening epsilon kills the
// pattern: threshold sensitivity sanity.
TEST(ToyExample, ThresholdSensitivity) {
  Dataset data = PaperToyDataset();
  MiningConfig config = ToyConfig();
  config.epsilon = 0.2;  // level-2 Kulc = 1/3 no longer negative
  auto result = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->patterns.empty());

  config = ToyConfig();
  config.gamma = 0.9;  // level-1 Kulc ~ 0.826 no longer positive
  result = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->patterns.empty());
}

}  // namespace
}  // namespace flipper
