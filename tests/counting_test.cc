// Support-counting engines: CandidateTrie against brute force, and the
// horizontal vs. vertical SupportCounter agreement property.

#include <gtest/gtest.h>

#include <unordered_set>

#include <vector>

#include "common/rng.h"
#include "core/candidate_trie.h"
#include "core/level_views.h"
#include "core/support_counting.h"
#include "test_util.h"

namespace flipper {
namespace {

class TrieProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrieProperty, CountsMatchBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    // Random database.
    TransactionDb db;
    std::vector<ItemId> txn;
    const ItemId alphabet = 20;
    for (int t = 0; t < 200; ++t) {
      txn.clear();
      const int width = 1 + static_cast<int>(rng.Below(9));
      for (int i = 0; i < width; ++i) {
        txn.push_back(static_cast<ItemId>(rng.Below(alphabet)));
      }
      db.Add(txn);
    }
    // Random distinct candidates of one size k.
    const int k = 2 + static_cast<int>(rng.Below(3));
    std::vector<Itemset> candidates;
    std::unordered_set<Itemset, ItemsetHash> seen;
    for (int c = 0; c < 60; ++c) {
      Itemset s;
      while (s.size() < k) {
        s.Insert(static_cast<ItemId>(rng.Below(alphabet)));
      }
      if (seen.insert(s).second) candidates.push_back(s);
    }

    CandidateTrie trie(candidates);
    EXPECT_EQ(trie.k(), k);
    EXPECT_EQ(trie.num_candidates(), candidates.size());
    for (TxnId t = 0; t < db.size(); ++t) {
      trie.CountTransaction(db.Get(t));
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_EQ(trie.CountOf(i), db.CountSupport(candidates[i]))
          << candidates[i].ToString();
    }
    EXPECT_GT(trie.MemoryBytes(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieProperty,
                         ::testing::Values(101, 202, 303));

TEST(Trie, EmptyCandidates) {
  CandidateTrie trie(std::span<const Itemset>{});
  EXPECT_EQ(trie.num_candidates(), 0u);
  const ItemId txn[] = {1, 2, 3};
  trie.CountTransaction(txn);  // must not crash
}

TEST(Trie, SingletonCandidates) {
  std::vector<Itemset> candidates = {Itemset{3}, Itemset{1}};
  CandidateTrie trie(candidates);
  const ItemId txn[] = {1, 2, 3};
  trie.CountTransaction(txn);
  EXPECT_EQ(trie.CountOf(0), 1u);
  EXPECT_EQ(trie.CountOf(1), 1u);
}

class CounterAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CounterAgreement, HorizontalEqualsVerticalAcrossLevels) {
  testutil::Dataset data = testutil::RandomDataset(GetParam());
  auto views_or = LevelViews::Build(data.db, data.taxonomy);
  ASSERT_TRUE(views_or.ok()) << views_or.status();
  LevelViews views = std::move(views_or).value();

  Rng rng(GetParam() ^ 0x1234);
  auto horizontal = MakeCounter(CounterKind::kHorizontal);
  auto vertical = MakeCounter(CounterKind::kVertical);
  for (int h = 1; h <= views.height(); ++h) {
    const auto& nodes = data.taxonomy.NodesAtLevel(h);
    std::vector<Itemset> candidates;
    std::unordered_set<Itemset, ItemsetHash> seen;
    for (int c = 0; c < 40; ++c) {
      Itemset s;
      const int k = 2 + static_cast<int>(rng.Below(2));
      while (s.size() < k) {
        s.Insert(nodes[rng.Below(nodes.size())]);
      }
      if (seen.insert(s).second) candidates.push_back(s);
    }
    std::vector<uint32_t> sup_h;
    std::vector<uint32_t> sup_v;
    ASSERT_TRUE(horizontal->Count(&views, h, candidates, &sup_h).ok());
    ASSERT_TRUE(vertical->Count(&views, h, candidates, &sup_v).ok());
    EXPECT_EQ(sup_h, sup_v) << "level " << h;
    // And both match the naive scan.
    for (size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_EQ(sup_h[i], views.Level(h).db.CountSupport(candidates[i]));
    }
  }
  EXPECT_GT(horizontal->num_db_scans(), 0u);
  EXPECT_EQ(vertical->num_db_scans(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterAgreement,
                         ::testing::Values(7, 8, 9));

TEST(LevelViews, RejectsNonLeafAndUnknownItems) {
  testutil::Dataset data = testutil::PaperToyDataset();
  // A transaction containing an internal node must be rejected.
  TransactionDb bad_db;
  bad_db.Add({*data.dict.Find("a1")});
  EXPECT_FALSE(LevelViews::Build(bad_db, data.taxonomy).ok());

  // A transaction containing an id outside the taxonomy.
  TransactionDb unknown_db;
  unknown_db.Add({static_cast<ItemId>(data.taxonomy.id_space() + 5)});
  EXPECT_FALSE(LevelViews::Build(unknown_db, data.taxonomy).ok());
}

TEST(LevelViews, SingleSupportsMatchGeneralizedFrequencies) {
  testutil::Dataset data = testutil::PaperToyDataset();
  auto views = LevelViews::Build(data.db, data.taxonomy);
  ASSERT_TRUE(views.ok());
  EXPECT_EQ(views->height(), 3);
  EXPECT_EQ(views->num_transactions(), 10u);
  // Paper Example 3: sup(a) = 8, sup(b) = 9 at level 1.
  EXPECT_EQ(views->ItemSupport(1, *data.dict.Find("a")), 8u);
  EXPECT_EQ(views->ItemSupport(1, *data.dict.Find("b")), 9u);
  // Level 2: sup(a1) = 6, sup(b1) = 6.
  EXPECT_EQ(views->ItemSupport(2, *data.dict.Find("a1")), 6u);
  EXPECT_EQ(views->ItemSupport(2, *data.dict.Find("b1")), 6u);
  EXPECT_GE(views->MaxUniversalWidth(), 2u);
}

}  // namespace
}  // namespace flipper
