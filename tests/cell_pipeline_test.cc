// Pipeline equivalence: the staged cell pipeline must produce a
// bit-identical MiningResult — patterns (with chain supports and
// correlations), per-cell stats and run-level counters — with
// cross-cell pipelining on or off, cross-row overlap on or off, the
// scan-cell counter on the hash-map or the bump-arena table, at
// 1/2/4/hardware threads, on the datagen scenarios (groceries,
// census, quest), including a quest profile that pushes cells into
// the scan-driven strategy.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/flipper_miner.h"
#include "storage/store_reader.h"
#include "storage/store_writer.h"
#include "datagen/census_sim.h"
#include "datagen/groceries_sim.h"
#include "datagen/quest_gen.h"
#include "datagen/taxonomy_gen.h"

namespace flipper {
namespace {

/// Everything that must be bit-identical across execution modes:
/// patterns (chains embed per-level supports, correlations, labels),
/// the integer fields of every per-cell stat in order, and the
/// run-level counters. Wall-clock fields are excluded.
std::string Fingerprint(const MiningResult& result) {
  std::string out;
  for (const FlippingPattern& p : result.patterns) {
    out += p.ToString() + "\n";
  }
  for (const CellStats& c : result.stats.cells) {
    out += "cell " + std::to_string(c.h) + "," + std::to_string(c.k) +
           ": g=" + std::to_string(c.generated) +
           " c=" + std::to_string(c.counted) +
           " f=" + std::to_string(c.frequent) +
           " l=" + std::to_string(c.labeled) +
           " a=" + std::to_string(c.alive) + "\n";
  }
  const MiningStats& s = result.stats;
  out += "gen=" + std::to_string(s.total_generated) +
         " cnt=" + std::to_string(s.total_counted) +
         " scans=" + std::to_string(s.db_scans) +
         " scan_cell=" + std::to_string(s.scan_cell_scans) +
         " tpg=" + std::to_string(s.tpg_stopped_at) +
         " sibp=" + std::to_string(s.sibp_banned_items) +
         " pos=" + std::to_string(s.num_positive) +
         " neg=" + std::to_string(s.num_negative) + "\n";
  return out;
}

struct Scenario {
  std::string name;
  ItemDictionary dict;
  Taxonomy taxonomy;
  TransactionDb db;
  MiningConfig config;
  /// The scenario must drive at least one cell into the scan-driven
  /// strategy (checked on the reference run).
  bool expect_scan_cells = false;
};

Scenario GroceriesScenario() {
  Scenario s;
  s.name = "groceries";
  GroceriesParams params;
  params.num_transactions = 3'000;
  auto data = GenerateGroceries(params);
  EXPECT_TRUE(data.ok()) << data.status();
  s.dict = std::move(data->dict);
  s.taxonomy = std::move(data->taxonomy);
  s.db = std::move(data->db);
  s.config = data->paper_config;
  return s;
}

Scenario CensusScenario() {
  Scenario s;
  s.name = "census";
  CensusParams params;
  params.num_records = 4'000;
  auto data = GenerateCensus(params);
  EXPECT_TRUE(data.ok()) << data.status();
  s.dict = std::move(data->dict);
  s.taxonomy = std::move(data->taxonomy);
  s.db = std::move(data->db);
  s.config = data->paper_config;
  return s;
}

/// Quest workload at low support thresholds with FLIPPING-only
/// pruning — the profile the scan-strategy ablation uses — so the
/// cartesian children product explodes and the planner switches to
/// the scan-driven cell.
Scenario QuestScanScenario() {
  Scenario s;
  s.name = "quest";
  TaxonomyGenParams tax_params;
  tax_params.num_roots = 10;
  tax_params.fanout = 5;
  tax_params.depth = 4;
  auto tax = GenerateBalancedTaxonomy(tax_params, &s.dict);
  EXPECT_TRUE(tax.ok()) << tax.status();
  s.taxonomy = std::move(tax).value();
  QuestParams quest;
  quest.num_transactions = 4'000;
  quest.avg_width = 5.0;
  quest.num_patterns = 500;
  quest.seed = 42;
  auto db = GenerateQuest(quest, s.taxonomy);
  EXPECT_TRUE(db.ok()) << db.status();
  s.db = std::move(db).value();
  s.config.gamma = 0.3;
  s.config.epsilon = 0.1;
  s.config.min_support = {0.01, 0.001, 0.0005, 0.0001};
  s.config.pruning = PruningOptions::FlippingOnly();
  s.expect_scan_cells = true;
  return s;
}

class PipelineEquivalence : public ::testing::TestWithParam<int> {};

void RunScenario(Scenario s) {
  SCOPED_TRACE(s.name);
  MiningConfig config = s.config;
  config.enable_pipelining = false;
  config.num_threads = 1;
  auto reference = FlipperMiner::Run(s.db, s.taxonomy, config);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string reference_fp = Fingerprint(*reference);
  if (s.expect_scan_cells) {
    EXPECT_GT(reference->stats.scan_cell_scans, 0u)
        << "scenario never hit the scan-driven strategy";
    EXPECT_GE(reference->stats.db_scans,
              reference->stats.scan_cell_scans);
  }

  // Execution modes × thread counts the suite sweeps: serial,
  // intra-row pipelining only, the full cross-row overlap, and the
  // overlap with the hash-map scan counter instead of the arena table
  // — at 1/2/4 threads plus whatever the hardware reports (0
  // resolves to it). Every combination must be byte-identical.
  struct Mode {
    const char* tag;
    bool pipelining;
    bool row_overlap;
    bool arena_counters;
  };
  constexpr Mode kModes[] = {
      {"serial", false, false, true},
      {"pipelined", true, false, true},
      {"pipelined+row_overlap", true, true, true},
      {"pipelined+row_overlap+map_counters", true, true, false},
  };
  for (int threads : {1, 2, 4, 0}) {
    for (const Mode& mode : kModes) {
      config.num_threads = threads;
      config.enable_pipelining = mode.pipelining;
      config.enable_row_overlap = mode.row_overlap;
      config.enable_arena_scan_counters = mode.arena_counters;
      auto run = FlipperMiner::Run(s.db, s.taxonomy, config);
      ASSERT_TRUE(run.ok()) << run.status();
      EXPECT_EQ(Fingerprint(*run), reference_fp)
          << "threads=" << threads << " mode=" << mode.tag;
    }
  }
  config.enable_row_overlap = true;
  config.enable_arena_scan_counters = true;

  // The same scenario through both FlipperStore round trips: a v1
  // store (raw columns, no catalog) and a v2 store (varint columns +
  // segment catalog, small segments so skipping decisions are in
  // play) must reproduce the reference fingerprint at 1 and 4
  // threads.
  for (uint32_t version :
       {storage::kFormatVersionV1, storage::kFormatVersionV2}) {
    const std::string path = ::testing::TempDir() + "pipeline_" +
                             s.name + "_v" + std::to_string(version) +
                             ".fdb";
    storage::StoreWriter::Options options;
    options.version = version;
    options.segment_txns = 256;
    ASSERT_TRUE(storage::WriteStoreFile(path, s.db, s.dict, s.taxonomy,
                                        options)
                    .ok());
    auto reader = storage::StoreReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status();
    for (int threads : {1, 4}) {
      config.num_threads = threads;
      config.enable_pipelining = true;
      auto run = FlipperMiner::Run(reader->db(), reader->taxonomy(),
                                   config);
      ASSERT_TRUE(run.ok()) << run.status();
      EXPECT_EQ(Fingerprint(*run), reference_fp)
          << "store v" << version << " threads=" << threads;
    }
  }
}

TEST(PipelineEquivalence, Groceries) { RunScenario(GroceriesScenario()); }

TEST(PipelineEquivalence, Census) { RunScenario(CensusScenario()); }

TEST(PipelineEquivalence, QuestWithScanCells) {
  RunScenario(QuestScanScenario());
}

// The sharded scan-cell must surface ResourceExhausted (not OOM or
// hang) when its distinct-combination count crosses the candidate
// cap, for any thread count and pipelining mode.
TEST(PipelineEquivalence, ScanCellExhaustionIsDeterministic) {
  Scenario s = QuestScanScenario();
  // Above row 1's pair count (so the cartesian cells pass) but below
  // the scan-driven cells' distinct-combination counts.
  s.config.max_candidates_per_cell = 2'000;
  std::string reference_error;
  for (int threads : {1, 2, 4, 0}) {
    for (bool pipelining : {false, true}) {
      for (bool arena : {false, true}) {
        s.config.num_threads = threads;
        s.config.enable_pipelining = pipelining;
        s.config.enable_arena_scan_counters = arena;
        auto run = FlipperMiner::Run(s.db, s.taxonomy, s.config);
        ASSERT_FALSE(run.ok());
        EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
        if (reference_error.empty()) {
          reference_error = run.status().ToString();
          EXPECT_NE(reference_error.find("scan-driven"),
                    std::string::npos)
              << reference_error;
        } else {
          EXPECT_EQ(run.status().ToString(), reference_error)
              << "threads=" << threads << " pipelining=" << pipelining
              << " arena=" << arena;
        }
      }
    }
  }
}

}  // namespace
}  // namespace flipper
