// Candidate generation: pair enumeration, the Apriori prefix join with
// subset pruning, vertical expansion (with shallow-leaf self-copies)
// and the known-infrequent subset filter.

#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "core/cell.h"
#include "test_util.h"

namespace flipper {
namespace {

ItemsetRecord MakeRecord(bool frequent) {
  ItemsetRecord r;
  r.frequent = frequent;
  r.support = frequent ? 10 : 0;
  return r;
}

TEST(CandidateGen, GeneratePairs) {
  const ItemId items[] = {1, 4, 9};
  auto pairs = GeneratePairs(items);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (Itemset{1, 4}));
  EXPECT_EQ(pairs[1], (Itemset{1, 9}));
  EXPECT_EQ(pairs[2], (Itemset{4, 9}));
  EXPECT_TRUE(GeneratePairs(std::span<const ItemId>{}).empty());
}

TEST(CandidateGen, AprioriJoinWithSubsetPruning) {
  Cell prev(1, 2, nullptr);
  // Frequent pairs {1,2}, {1,3}, {2,3}, {1,4}; {2,4},{3,4} absent.
  for (auto s : {Itemset{1, 2}, Itemset{1, 3}, Itemset{2, 3},
                 Itemset{1, 4}}) {
    prev.Put(s, MakeRecord(true));
  }
  std::vector<Itemset> frequent = prev.Select(
      [](const ItemsetRecord& r) { return r.frequent; });
  auto candidates = AprioriJoin(frequent, prev);
  // {1,2}+{1,3} -> {1,2,3}: subset {2,3} frequent -> kept.
  // {1,2}+{1,4} -> {1,2,4}: subset {2,4} missing -> pruned.
  // {1,3}+{1,4} -> {1,3,4}: subset {3,4} missing -> pruned.
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], (Itemset{1, 2, 3}));
}

TEST(CandidateGen, AprioriJoinTreatsInfrequentAsAbsent) {
  Cell prev(1, 2, nullptr);
  prev.Put(Itemset{1, 2}, MakeRecord(true));
  prev.Put(Itemset{1, 3}, MakeRecord(true));
  prev.Put(Itemset{2, 3}, MakeRecord(false));  // counted but infrequent
  std::vector<Itemset> frequent = prev.Select(
      [](const ItemsetRecord& r) { return r.frequent; });
  auto candidates = AprioriJoin(frequent, prev);
  EXPECT_TRUE(candidates.empty());
}

TEST(CandidateGen, VerticalExpandCartesianProduct) {
  testutil::Dataset data = testutil::PaperToyDataset();
  const ItemId a = *data.dict.Find("a");
  const ItemId b = *data.dict.Find("b");
  std::vector<Itemset> out;
  VerticalExpand(Itemset::Pair(a, b), data.taxonomy, 2,
                 [](ItemId) { return true; }, &out);
  // a has children {a1, a2}, b has {b1, b2}: 4 combinations.
  EXPECT_EQ(out.size(), 4u);
  for (const Itemset& s : out) EXPECT_EQ(s.size(), 2);
}

TEST(CandidateGen, VerticalExpandHonorsChildFilter) {
  testutil::Dataset data = testutil::PaperToyDataset();
  const ItemId a = *data.dict.Find("a");
  const ItemId b = *data.dict.Find("b");
  const ItemId a1 = *data.dict.Find("a1");
  std::vector<Itemset> out;
  VerticalExpand(Itemset::Pair(a, b), data.taxonomy, 2,
                 [&](ItemId child) { return child != a1; }, &out);
  EXPECT_EQ(out.size(), 2u);  // {a2} x {b1, b2}
  // A filter rejecting everything on one side yields nothing.
  out.clear();
  VerticalExpand(Itemset::Pair(a, b), data.taxonomy, 2,
                 [&](ItemId child) {
                   return data.taxonomy.ParentOf(child) != a;
                 },
                 &out);
  EXPECT_TRUE(out.empty());
}

TEST(CandidateGen, VerticalExpandShallowLeafSelfCopy) {
  // Taxonomy: root 0 with children {2, 3}; root 1 is a shallow leaf.
  TaxonomyBuilder builder;
  builder.AddRoot(0);
  builder.AddRoot(1);
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddEdge(0, 3).ok());
  auto tax = builder.Build();
  ASSERT_TRUE(tax.ok());
  std::vector<Itemset> out;
  VerticalExpand(Itemset::Pair(0, 1), *tax, 2,
                 [](ItemId) { return true; }, &out);
  // {2,1} and {3,1}: the shallow leaf 1 represents itself at level 2.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Itemset{1, 2}));
  EXPECT_EQ(out[1], (Itemset{1, 3}));
}

TEST(CandidateGen, FilterKnownInfrequentSubsets) {
  Cell prev(2, 2, nullptr);
  prev.Put(Itemset{1, 2}, MakeRecord(true));
  prev.Put(Itemset{2, 3}, MakeRecord(false));  // known infrequent
  // {1,2,3} has known-infrequent subset {2,3} -> dropped.
  // {1,2,4} has unknown subsets {1,4}, {2,4} -> kept.
  std::vector<Itemset> candidates = {Itemset{1, 2, 3}, Itemset{1, 2, 4}};
  auto filtered =
      FilterKnownInfrequentSubsets(std::move(candidates), prev);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0], (Itemset{1, 2, 4}));
}

TEST(Cell, MemoryAccountingAndRetain) {
  MemoryTracker tracker;
  {
    Cell cell(1, 2, &tracker);
    cell.Put(Itemset{1, 2}, MakeRecord(true));
    cell.Put(Itemset{1, 3}, MakeRecord(false));
    EXPECT_EQ(tracker.live_bytes(), 2 * Cell::kBytesPerRecord);
    // Overwrite does not double-count.
    cell.Put(Itemset{1, 2}, MakeRecord(true));
    EXPECT_EQ(tracker.live_bytes(), 2 * Cell::kBytesPerRecord);

    EXPECT_EQ(cell.Retain([](const ItemsetRecord& r) {
      return r.frequent;
    }), 1u);
    EXPECT_EQ(tracker.live_bytes(), Cell::kBytesPerRecord);
    EXPECT_EQ(cell.size(), 1u);
  }
  EXPECT_EQ(tracker.live_bytes(), 0);
  EXPECT_EQ(tracker.peak_bytes(), 2 * Cell::kBytesPerRecord);
}

TEST(Cell, AllNonPositive) {
  Cell cell(1, 2, nullptr);
  EXPECT_TRUE(cell.AllNonPositive());  // vacuous
  ItemsetRecord negative = MakeRecord(true);
  negative.label = Label::kNegative;
  cell.Put(Itemset{1, 2}, negative);
  EXPECT_TRUE(cell.AllNonPositive());
  ItemsetRecord positive = MakeRecord(true);
  positive.label = Label::kPositive;
  cell.Put(Itemset{1, 3}, positive);
  EXPECT_FALSE(cell.AllNonPositive());
}

}  // namespace
}  // namespace flipper
