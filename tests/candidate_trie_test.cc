// CandidateTrie layouts and probe kernels: the flat SoA arena must
// count exactly like the legacy layer layout (and like brute force)
// for every option combination, including adversarial shapes — k = 1,
// a single candidate, transactions shorter than k, duplicate-free
// max-width transactions, and item ids >= 512 that alias in the
// prefilter bitset. Plus: probe-kernel agreement with std::lower_bound,
// exact memory accounting across layouts, scratch growth accounting,
// and Build() arena reuse.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "core/candidate_trie.h"
#include "core/support_counting.h"
#include "data/transaction_db.h"
#include "test_util.h"

namespace flipper {
namespace {

const CandidateTrie::Options kOptionGrid[] = {
    {/*flat=*/true, /*prefilter=*/true},
    {/*flat=*/true, /*prefilter=*/false},
    {/*flat=*/false, /*prefilter=*/true},
    {/*flat=*/false, /*prefilter=*/false},
};

std::string OptionTag(const CandidateTrie::Options& options) {
  return std::string(options.flat ? "flat" : "legacy") +
         (options.prefilter ? "+prefilter" : "");
}

/// Counts `db` through a trie built with `options` and compares every
/// candidate's support against the brute-force scan.
void ExpectCountsMatchBruteForce(
    const TransactionDb& db, const std::vector<Itemset>& candidates,
    const CandidateTrie::Options& options) {
  CandidateTrie trie(candidates, options);
  CandidateTrie::CountScratch scratch;
  scratch.Reserve(db.max_width());
  std::vector<uint32_t> counts(candidates.size(), 0);
  for (TxnId t = 0; t < db.size(); ++t) {
    trie.CountTransaction(db.Get(t), counts, &scratch);
  }
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(counts[i], db.CountSupport(candidates[i]))
        << OptionTag(options) << " diverged on " << candidates[i].ToString();
  }
  EXPECT_EQ(scratch.grow_events, 0u);
}

class TrieLayoutProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrieLayoutProperty, AllLayoutsMatchBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 12; ++trial) {
    TransactionDb db;
    std::vector<ItemId> txn;
    // Alphabet beyond the 512-bit prefilter width so bitset aliasing
    // (ids that differ by a multiple of 512 share a bit) is routinely
    // in play.
    const ItemId alphabet = 700 + static_cast<ItemId>(rng.Below(600));
    for (int t = 0; t < 250; ++t) {
      txn.clear();
      const int width = 1 + static_cast<int>(rng.Below(11));
      for (int i = 0; i < width; ++i) {
        txn.push_back(static_cast<ItemId>(rng.Below(alphabet)));
      }
      db.Add(txn);
    }
    const int k = 1 + static_cast<int>(rng.Below(5));
    std::vector<Itemset> candidates;
    std::unordered_set<Itemset, ItemsetHash> seen;
    for (int c = 0; c < 80; ++c) {
      Itemset s;
      while (s.size() < k) {
        // Half the candidates cluster on a narrow band so the
        // prefilter actually rejects transactions.
        const ItemId item =
            c % 2 == 0 ? static_cast<ItemId>(rng.Below(alphabet))
                       : static_cast<ItemId>(rng.Below(64));
        s.Insert(item);
      }
      if (seen.insert(s).second) candidates.push_back(s);
    }
    for (const CandidateTrie::Options& options : kOptionGrid) {
      ExpectCountsMatchBruteForce(db, candidates, options);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieLayoutProperty,
                         ::testing::Values(11, 22, 33));

TEST(CandidateTrie, EmptyCandidatesAllLayouts) {
  for (const CandidateTrie::Options& options : kOptionGrid) {
    CandidateTrie trie(std::span<const Itemset>{}, options);
    EXPECT_EQ(trie.num_candidates(), 0u);
    EXPECT_EQ(trie.num_nodes(), 0u);
    const ItemId txn[] = {1, 2, 3};
    trie.CountTransaction(txn);  // must not crash
  }
}

TEST(CandidateTrie, SingleItemCandidates) {
  // k = 1: the root layer doubles as the leaf layer.
  std::vector<Itemset> candidates = {Itemset{3}, Itemset{1},
                                     Itemset{600}};
  const ItemId txn[] = {1, 2, 3, 600};
  const ItemId missing[] = {0, 2, 4};
  for (const CandidateTrie::Options& options : kOptionGrid) {
    CandidateTrie trie(candidates, options);
    EXPECT_EQ(trie.k(), 1);
    EXPECT_EQ(trie.num_nodes(), 3u);
    trie.CountTransaction(txn);
    trie.CountTransaction(missing);
    EXPECT_EQ(trie.CountOf(0), 1u) << OptionTag(options);
    EXPECT_EQ(trie.CountOf(1), 1u) << OptionTag(options);
    EXPECT_EQ(trie.CountOf(2), 1u) << OptionTag(options);
  }
}

TEST(CandidateTrie, SingleCandidateAndShortTransactions) {
  std::vector<Itemset> candidates = {Itemset{4, 9, 17}};
  for (const CandidateTrie::Options& options : kOptionGrid) {
    CandidateTrie trie(candidates, options);
    const ItemId shorter[] = {4, 9};     // txn.size() < k
    const ItemId exact[] = {4, 9, 17};   // the candidate itself
    const ItemId super[] = {1, 4, 9, 12, 17, 30};
    const ItemId wrong[] = {4, 9, 18};
    trie.CountTransaction(shorter);
    EXPECT_EQ(trie.CountOf(0), 0u) << OptionTag(options);
    trie.CountTransaction(exact);
    trie.CountTransaction(super);
    trie.CountTransaction(wrong);
    EXPECT_EQ(trie.CountOf(0), 2u) << OptionTag(options);
  }
}

TEST(CandidateTrie, MaxWidthDuplicateFreeTransactions) {
  // Candidates at the arity cap counted inside wide, duplicate-free
  // transactions (every item distinct, k = kMaxItemsetSize).
  Itemset full;
  for (int i = 0; i < kMaxItemsetSize; ++i) {
    full.PushBack(static_cast<ItemId>(i * 7));
  }
  std::vector<Itemset> candidates = {full, full.WithoutIndex(0)
                                               .WithItem(1000)};
  std::vector<ItemId> wide;
  for (ItemId item = 0; item < 1200; ++item) wide.push_back(item);
  // `wide` contains every multiple of 7 below 1200 plus 1000, so it
  // covers both candidates.
  for (const CandidateTrie::Options& options : kOptionGrid) {
    CandidateTrie trie(candidates, options);
    trie.CountTransaction(wide);
    EXPECT_EQ(trie.CountOf(0), 1u) << OptionTag(options);
    EXPECT_EQ(trie.CountOf(1), 1u) << OptionTag(options);
  }
}

TEST(CandidateTrie, PrefilterBitsetAliasingIsExact) {
  // Ids that differ by a multiple of 512 hash to the same prefilter
  // bit (the multiplier is odd): 1000 = 488 + 512 aliases 488. A
  // colliding non-candidate transaction item survives the bitset, is
  // inside [min, max], and must then be rejected by the walk — never
  // miscounted, never crashing.
  std::vector<Itemset> candidates = {Itemset{488}, Itemset{2000}};
  CandidateTrie::Options options;  // flat + prefilter
  CandidateTrie trie(candidates, options);
  ASSERT_TRUE(trie.options().prefilter);

  const ItemId both[] = {488, 2000};
  const ItemId collider[] = {1000};       // aliases 488, not a candidate
  const ItemId out_of_range[] = {2512};   // aliases 2000, above max
  trie.CountTransaction(both);
  trie.CountTransaction(collider);
  trie.CountTransaction(out_of_range);
  EXPECT_EQ(trie.CountOf(0), 1u);
  EXPECT_EQ(trie.CountOf(1), 1u);

  // The same inputs through the unfiltered legacy trie agree.
  CandidateTrie legacy(candidates, {/*flat=*/false, /*prefilter=*/false});
  legacy.CountTransaction(both);
  legacy.CountTransaction(collider);
  legacy.CountTransaction(out_of_range);
  EXPECT_EQ(legacy.CountOf(0), 1u);
  EXPECT_EQ(legacy.CountOf(1), 1u);
}

TEST(CandidateTrie, PrefilterRejectionIsCountedAndExact) {
  // Candidates on a narrow band; transactions mostly outside it.
  std::vector<Itemset> candidates = {Itemset{10, 11}, Itemset{12, 13}};
  CandidateTrie trie(candidates, {/*flat=*/true, /*prefilter=*/true});
  CandidateTrie::CountScratch scratch;
  scratch.Reserve(8);
  std::vector<uint32_t> counts(candidates.size(), 0);
  const ItemId far_away[] = {900, 901, 902};  // all outside [10, 13]
  const ItemId partial[] = {10, 900, 901};    // 1 live item < k
  const ItemId hit[] = {10, 11, 900};
  trie.CountTransaction(far_away, counts, &scratch);
  trie.CountTransaction(partial, counts, &scratch);
  trie.CountTransaction(hit, counts, &scratch);
  EXPECT_EQ(scratch.txns_prefiltered, 2u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(scratch.grow_events, 0u);
}

TEST(CandidateTrie, ScratchGrowthIsCountedOnce) {
  std::vector<Itemset> candidates = {Itemset{1, 2}};
  CandidateTrie trie(candidates, {/*flat=*/true, /*prefilter=*/true});
  CandidateTrie::CountScratch scratch;  // deliberately not reserved
  std::vector<uint32_t> counts(1, 0);
  std::vector<ItemId> wide;
  for (ItemId i = 0; i < 64; ++i) wide.push_back(i);
  trie.CountTransaction(wide, counts, &scratch);
  EXPECT_GT(scratch.grow_events, 0u);  // the un-warmed call grew
  const uint64_t after_first = scratch.grow_events;
  for (int round = 0; round < 100; ++round) {
    trie.CountTransaction(wide, counts, &scratch);
  }
  // Warm scratch: no further per-transaction allocation.
  EXPECT_EQ(scratch.grow_events, after_first);
}

TEST(CandidateTrie, MemoryAccountingIsExactAcrossLayouts) {
  Rng rng(77);
  std::vector<Itemset> candidates;
  std::unordered_set<Itemset, ItemsetHash> seen;
  while (candidates.size() < 200) {
    Itemset s;
    while (s.size() < 3) {
      s.Insert(static_cast<ItemId>(rng.Below(60)));
    }
    if (seen.insert(s).second) candidates.push_back(s);
  }

  const CandidateTrie flat(candidates, {true, false});
  const CandidateTrie flat_pf(candidates, {true, true});
  const CandidateTrie legacy(candidates, {false, false});
  ASSERT_EQ(flat.num_nodes(), legacy.num_nodes());
  const auto nodes = static_cast<int64_t>(flat.num_nodes());
  const auto leaves = static_cast<int64_t>(candidates.size());
  const auto internal = nodes - leaves;
  const int64_t counters = leaves * static_cast<int64_t>(sizeof(uint32_t));

  // Flat: items column (4B/node) + child ranges (8B/internal) +
  // leaf indexes (4B/leaf) + k+1 layer offsets + counters. Exact —
  // the builder reserves precise sizes.
  const int64_t expected_flat =
      counters + nodes * 4 + internal * 8 + leaves * 4 + (3 + 1) * 4;
  EXPECT_EQ(flat.MemoryBytes(), expected_flat);

  // The prefilter adds exactly its bitset block.
  EXPECT_EQ(flat_pf.MemoryBytes(),
            expected_flat + CandidateTrie::PrefilterMemoryBytes());

  // Legacy: 16B AoS nodes + counters, also reserved exactly; the two
  // accountings must agree modulo the per-node layout delta.
  const int64_t expected_legacy = counters + nodes * 16;
  EXPECT_EQ(legacy.MemoryBytes(), expected_legacy);
  EXPECT_EQ(legacy.MemoryBytes() - flat.MemoryBytes(),
            nodes * 16 - (nodes * 4 + internal * 8 + leaves * 4 + 16));
}

TEST(CandidateTrie, BuildReusesArenaAndStaysCorrect) {
  Rng rng(99);
  CandidateTrie reused;  // rebuilt in place across "cells"
  for (int round = 0; round < 6; ++round) {
    const int k = 1 + round % 4;
    std::vector<Itemset> candidates;
    std::unordered_set<Itemset, ItemsetHash> seen;
    // Stay well below C(50, k) so the distinct-candidate collection
    // loop always terminates (50 possible singletons at k = 1).
    const size_t want = k == 1 ? 35 : 150 - static_cast<size_t>(round) * 20;
    while (candidates.size() < want) {
      Itemset s;
      while (s.size() < k) {
        s.Insert(static_cast<ItemId>(rng.Below(50)));
      }
      if (seen.insert(s).second) candidates.push_back(s);
    }
    TransactionDb db;
    std::vector<ItemId> txn;
    for (int t = 0; t < 120; ++t) {
      txn.clear();
      for (int i = 0; i < 8; ++i) {
        txn.push_back(static_cast<ItemId>(rng.Below(50)));
      }
      db.Add(txn);
    }

    reused.Build(candidates, CandidateTrie::Options{});
    const CandidateTrie fresh(candidates);
    std::vector<uint32_t> reused_counts(candidates.size(), 0);
    std::vector<uint32_t> fresh_counts(candidates.size(), 0);
    CandidateTrie::CountScratch scratch;
    scratch.Reserve(db.max_width());
    for (TxnId t = 0; t < db.size(); ++t) {
      reused.CountTransaction(db.Get(t), reused_counts, &scratch);
      fresh.CountTransaction(db.Get(t), fresh_counts);
    }
    EXPECT_EQ(reused_counts, fresh_counts) << "round " << round;
    // Rebuilding keeps capacity, so accounting never shrinks below
    // the fresh trie's exact footprint.
    EXPECT_GE(reused.MemoryBytes(), fresh.MemoryBytes());
  }
}

TEST(ProbeKernels, AgreeWithStdLowerBound) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t n = 1 + static_cast<uint32_t>(rng.Below(300));
    std::vector<ItemId> items(n);
    ItemId next = static_cast<ItemId>(rng.Below(16));
    for (auto& item : items) {
      next += static_cast<ItemId>(rng.Below(6));  // dups allowed
      item = next;
    }
    const auto lo = static_cast<uint32_t>(rng.Below(n));
    const ItemId target = static_cast<ItemId>(rng.Below(next + 10));
    const auto expected = static_cast<uint32_t>(
        std::lower_bound(items.begin() + lo, items.end(), target) -
        items.begin());
    EXPECT_EQ(trie_probe::LowerBoundScalar(items.data(), lo, n, target),
              expected);
    EXPECT_EQ(trie_probe::LowerBoundPackedPortable(items.data(), lo, n,
                                                   target),
              expected);
    EXPECT_EQ(trie_probe::LowerBoundPacked(items.data(), lo, n, target),
              expected);
    EXPECT_EQ(trie_probe::LowerBoundGallop(items.data(), lo, n, target),
              expected);
  }
  EXPECT_NE(trie_probe::PackedKernelName(), nullptr);
}

TEST(ProbeKernels, LargeIdsUseUnsignedOrdering) {
  // Ids above 2^31 would invert under a naive signed SIMD compare;
  // the kernels bias them back to unsigned order.
  std::vector<ItemId> items = {1,          5,          100,
                               0x7fffffff, 0x80000001, 0xfffffffe};
  const auto n = static_cast<uint32_t>(items.size());
  for (const ItemId target :
       {ItemId{0}, ItemId{6}, ItemId{0x7fffffff}, ItemId{0x80000000},
        ItemId{0xfffffffe}, ItemId{0xffffffff}}) {
    const auto expected = static_cast<uint32_t>(
        std::lower_bound(items.begin(), items.end(), target) -
        items.begin());
    EXPECT_EQ(trie_probe::LowerBoundScalar(items.data(), 0, n, target),
              expected);
    EXPECT_EQ(trie_probe::LowerBoundPackedPortable(items.data(), 0, n,
                                                   target),
              expected);
    EXPECT_EQ(trie_probe::LowerBoundPacked(items.data(), 0, n, target),
              expected)
        << "target " << target;
    EXPECT_EQ(trie_probe::LowerBoundGallop(items.data(), 0, n, target),
              expected);
  }
}

TEST(ProbeKernels, DispatchAgreementOnAdversarialShapes) {
  // Every kernel the host can run — whatever cpuid dispatch would pick
  // plus every forcible fallback — must agree with std::lower_bound on
  // the shapes that break SIMD lower bounds: empty ranges, runs of
  // equal ids, lengths straddling the 4/8-lane vector widths, targets
  // outside the id range, and ids crossing the 2^31 sign boundary.
  const std::vector<const char*> kernels =
      trie_probe::AvailableKernelNames();
  ASSERT_FALSE(kernels.empty());
  struct Shape {
    const char* tag;
    std::vector<ItemId> items;
  };
  std::vector<Shape> shapes = {
      {"single", {7}},
      {"all_equal", {5, 5, 5, 5, 5, 5, 5, 5, 5}},
      {"sign_boundary",
       {1, 2, 0x7ffffffe, 0x7fffffff, 0x80000000, 0x80000001,
        0xfffffffe, 0xffffffff}},
  };
  // Lengths around the SSE (4-lane) and AVX2 (8-lane) widths, with
  // duplicate runs mixed in.
  Rng rng(321);
  for (const uint32_t n : {2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u,
                           31u, 33u, 64u, 100u}) {
    Shape shape;
    shape.tag = "len";
    ItemId next = static_cast<ItemId>(rng.Below(4));
    for (uint32_t i = 0; i < n; ++i) {
      shape.items.push_back(next);
      next += static_cast<ItemId>(rng.Below(3));  // frequent dups
    }
    shapes.push_back(std::move(shape));
  }
  for (const Shape& shape : shapes) {
    const auto n = static_cast<uint32_t>(shape.items.size());
    std::vector<ItemId> targets = {0, shape.items.front(),
                                   shape.items.back(), 0xffffffff};
    for (int i = 0; i < 32; ++i) {
      targets.push_back(static_cast<ItemId>(
          rng.Below(static_cast<uint64_t>(shape.items.back()) + 3)));
    }
    for (uint32_t lo = 0; lo <= n; ++lo) {
      for (const ItemId target : targets) {
        const auto expected = static_cast<uint32_t>(
            std::lower_bound(shape.items.begin() + lo,
                             shape.items.end(), target) -
            shape.items.begin());
        for (const char* name : kernels) {
          const trie_probe::ProbeFn fn = trie_probe::KernelByName(name);
          ASSERT_NE(fn, nullptr) << name;
          EXPECT_EQ(fn(shape.items.data(), lo, n, target), expected)
              << shape.tag << " kernel=" << name << " lo=" << lo
              << " target=" << target;
        }
      }
    }
  }
}

TEST(ProbeKernels, ForcePackedKernelPinsAndErrors) {
  // Pinning any available kernel redirects the dispatched entry point
  // and is reported by name; unknown names are InvalidArgument (the
  // env-override path turns the same condition into a hard abort, so
  // a typo can never silently fall back).
  for (const char* name : trie_probe::AvailableKernelNames()) {
    ASSERT_TRUE(trie_probe::ForcePackedKernel(name).ok()) << name;
    EXPECT_STREQ(trie_probe::PackedKernelName(), name);
    EXPECT_EQ(trie_probe::ResolvedPackedKernel(),
              trie_probe::KernelByName(name));
    const ItemId items[] = {2, 4, 6};
    EXPECT_EQ(trie_probe::LowerBoundPacked(items, 0, 3, 5), 2u);
  }
  const Status unknown = trie_probe::ForcePackedKernel("avx512");
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.ToString().find("avx512"), std::string::npos);
  EXPECT_EQ(trie_probe::KernelByName("avx512"), nullptr);

  // A host without AVX2 must refuse to force it rather than run an
  // illegal instruction (FailedPrecondition, not a crash).
  const std::vector<const char*> available =
      trie_probe::AvailableKernelNames();
  const bool has_avx2 =
      std::find_if(available.begin(), available.end(), [](const char* n) {
        return std::string_view(n) == "avx2";
      }) != available.end();
  if (!has_avx2) {
    EXPECT_EQ(trie_probe::ForcePackedKernel("avx2").code(),
              StatusCode::kFailedPrecondition);
  }

  trie_probe::ResetPackedKernel();
  // Auto-dispatch resolves to the preferred available kernel again.
  EXPECT_STREQ(trie_probe::PackedKernelName(), available.front());
}

}  // namespace
}  // namespace flipper
