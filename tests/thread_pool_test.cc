// ThreadPool / ParallelFor: task execution, deterministic static
// sharding, inline fallbacks, and exception propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace flipper {
namespace {

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7);
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);

  // The pool is reusable after Wait().
  pool.Submit([&counter] { counter += 10; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 110);
}

TEST(ThreadPool, SingleThreadPoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int x = 0;
  pool.Submit([&x] { x = 42; });
  pool.Wait();
  EXPECT_EQ(x, 42);
}

TEST(ThreadPool, WaitPropagatesTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool survives and keeps working.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ShardRange, PartitionsExactly) {
  for (size_t begin : {size_t{0}, size_t{5}}) {
    for (size_t total : {size_t{0}, size_t{1}, size_t{7}, size_t{100}}) {
      for (int shards : {1, 2, 3, 8}) {
        const size_t end = begin + total;
        size_t expect_lo = begin;
        for (int s = 0; s < shards; ++s) {
          const auto [lo, hi] = ShardRange(begin, end, shards, s);
          EXPECT_EQ(lo, expect_lo);
          EXPECT_LE(hi, end);
          // Shard sizes differ by at most one.
          EXPECT_LE(hi - lo, total / static_cast<size_t>(shards) + 1);
          expect_lo = hi;
        }
        EXPECT_EQ(expect_lo, end);
      }
    }
  }
}

class ParallelForThreads : public ::testing::TestWithParam<int> {};

TEST_P(ParallelForThreads, VisitsEveryIndexOnce) {
  const int threads = GetParam();
  ThreadPool pool(threads);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  ParallelFor(&pool, 0, kN, threads * 3,
              [&](int shard, size_t lo, size_t hi) {
                EXPECT_GE(shard, 0);
                EXPECT_LT(lo, hi);
                for (size_t i = lo; i < hi; ++i) ++visits[i];
              });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForThreads,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelFor, NullPoolRunsInlineInShardOrder) {
  std::vector<int> shards_seen;
  ParallelFor(nullptr, 0, 10, 4, [&](int shard, size_t lo, size_t hi) {
    EXPECT_LT(lo, hi);
    shards_seen.push_back(shard);
  });
  EXPECT_EQ(shards_seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ParallelFor, EmptyRangeAndExcessShards) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 5, 5, 4, [&](int, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  // More shards than elements: every element still visited once, no
  // empty-shard callbacks.
  std::atomic<int> visited{0};
  ParallelFor(&pool, 0, 3, 16, [&](int, size_t lo, size_t hi) {
    visited += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(visited.load(), 3);
}

}  // namespace
}  // namespace flipper
