// Seed-driven randomized differential harness for the whole
// input-to-patterns pipeline. Every round draws a random dataset
// (taxonomy shape, transaction count/width) and a random mining
// configuration (thresholds, measure, counter, pruning stack, scan
// cells, pipelining, segment skipping), then requires that
//
//   - FlipperMiner over the text-loaded inputs,
//   - FlipperMiner over a v1 FlipperStore round trip,
//   - FlipperMiner over a v2 FlipperStore round trip (varint columns
//     + segment catalog, small segments so skipping has bite), and
//   - FlipperMiner over a v2 store grown with 1-3 random append
//     sessions (base prefix + OpenAppend batches, commit trailer in
//     play)
//
// are all byte-identical to the NaiveMiner oracle's CSV export, at 1
// and 4 threads. This is the guard rail for the v2 scan-skipping
// machinery: a single wrongly skipped segment shows up as a support
// (and usually a pattern-set) difference against the oracle — and for
// the append path, where a mis-encoded block pair or stale catalog
// would diverge the same way.
//
// Reproducing a failure: every round prints its seed into the assert
// message; rerun that exact round with
//
//   FLIPPER_FUZZ_SEED=<seed> FLIPPER_FUZZ_ITERS=1 ./fuzz_differential_test
//
// FLIPPER_FUZZ_ITERS (default 10) scales the number of rounds; CI keeps
// it small, soak runs can raise it arbitrarily.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/env.h"
#include "common/rng.h"
#include "core/flipper_miner.h"
#include "core/level_views.h"
#include "core/naive_miner.h"
#include "core/pattern_io.h"
#include "data/db_io.h"
#include "storage/store_reader.h"
#include "storage/store_writer.h"
#include "taxonomy/taxonomy_io.h"
#include "test_util.h"

namespace flipper {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// One round's inputs: the canonical id space comes from reloading the
/// serialized text files, exactly as `flipper_cli mine <basket> <tax>`
/// would assign ids.
struct RoundInputs {
  ItemDictionary dict;
  Taxonomy taxonomy;
  TransactionDb db;
  std::string v1_path;
  std::string v2_path;
};

RoundInputs MakeRoundInputs(uint64_t seed, const testutil::Dataset& data,
                            uint32_t segment_txns) {
  RoundInputs inputs;
  const std::string tag = "fuzz_" + std::to_string(seed);
  const std::string basket = TempPath(tag + ".basket");
  const std::string taxonomy = TempPath(tag + ".taxonomy");
  EXPECT_TRUE(
      WriteTaxonomyFile(data.taxonomy, data.dict, taxonomy).ok());
  EXPECT_TRUE(WriteBasketFile(data.db, data.dict, basket).ok());
  auto loaded_taxonomy = ReadTaxonomyFile(taxonomy, &inputs.dict);
  EXPECT_TRUE(loaded_taxonomy.ok()) << loaded_taxonomy.status();
  inputs.taxonomy = std::move(loaded_taxonomy).value();
  auto loaded_db = ReadBasketFile(basket, &inputs.dict);
  EXPECT_TRUE(loaded_db.ok()) << loaded_db.status();
  inputs.db = std::move(loaded_db).value();

  inputs.v1_path = TempPath(tag + "_v1.fdb");
  inputs.v2_path = TempPath(tag + "_v2.fdb");
  storage::StoreWriter::Options options;
  options.segment_txns = segment_txns;
  options.version = storage::kFormatVersionV1;
  EXPECT_TRUE(storage::WriteStoreFile(inputs.v1_path, inputs.db,
                                      inputs.dict, inputs.taxonomy,
                                      options)
                  .ok());
  options.version = storage::kFormatVersionV2;
  EXPECT_TRUE(storage::WriteStoreFile(inputs.v2_path, inputs.db,
                                      inputs.dict, inputs.taxonomy,
                                      options)
                  .ok());
  return inputs;
}

/// Writes `inputs.db` as a v2 store grown incrementally: a base prefix
/// via Create() plus `num_batches` OpenAppend() sessions over random
/// split points. The result must mine exactly like the bulk-written
/// store.
std::string WriteAppendedStore(const RoundInputs& inputs,
                               const std::string& tag,
                               uint32_t segment_txns,
                               uint32_t num_batches, Rng* rng) {
  const std::string path = TempPath(tag + "_v2_appended.fdb");
  const uint64_t total = inputs.db.size();
  std::vector<uint64_t> cuts = {0, total};
  for (uint32_t b = 0; b < num_batches; ++b) {
    cuts.push_back(rng->Below(total + 1));
  }
  std::sort(cuts.begin(), cuts.end());
  {
    storage::StoreWriter::Options options;
    options.segment_txns = segment_txns;
    auto writer = storage::StoreWriter::Create(path, options);
    EXPECT_TRUE(writer.ok()) << writer.status();
    for (uint64_t t = 0; t < cuts[1]; ++t) {
      EXPECT_TRUE(writer->Append(inputs.db.Get(t)).ok());
    }
    EXPECT_TRUE(writer->Finish(inputs.dict, inputs.taxonomy).ok());
  }
  // Each batch is one commit (empty batches exercise the zero-size
  // block pair).
  for (size_t cut = 1; cut + 1 < cuts.size(); ++cut) {
    auto writer = storage::StoreWriter::OpenAppend(path);
    EXPECT_TRUE(writer.ok()) << writer.status();
    for (uint64_t t = cuts[cut]; t < cuts[cut + 1]; ++t) {
      EXPECT_TRUE(writer->Append(inputs.db.Get(t)).ok());
    }
    EXPECT_TRUE(writer->Finish(inputs.dict, inputs.taxonomy).ok());
  }
  return path;
}

/// Random but valid mining configuration; the whole pruning stack and
/// both counters are in play because every layer must preserve the
/// answer set.
MiningConfig RandomConfig(Rng* rng) {
  MiningConfig config;
  config.gamma = 0.4 + 0.25 * rng->NextDouble();
  config.epsilon =
      std::min(0.1 + 0.2 * rng->NextDouble(), 0.8 * config.gamma);
  const double base = 0.004 + 0.016 * rng->NextDouble();
  config.min_support = {3 * base, 2 * base, base};
  static constexpr MeasureKind kMeasures[] = {
      MeasureKind::kKulczynski, MeasureKind::kCosine,
      MeasureKind::kAllConfidence};
  config.measure = kMeasures[rng->Below(3)];
  config.counter = rng->Bernoulli(0.5) ? CounterKind::kHorizontal
                                       : CounterKind::kVertical;
  static const PruningOptions kPruning[] = {
      PruningOptions::Full(), PruningOptions::FlippingTpg(),
      PruningOptions::FlippingOnly(), PruningOptions::Basic()};
  config.pruning = kPruning[rng->Below(4)];
  config.enable_scan_cells = rng->Bernoulli(0.7);
  config.enable_pipelining = rng->Bernoulli(0.7);
  config.enable_row_overlap = rng->Bernoulli(0.7);
  config.enable_arena_scan_counters = rng->Bernoulli(0.7);
  config.enable_segment_skipping = rng->Bernoulli(0.75);
  config.enable_flat_trie = rng->Bernoulli(0.7);
  config.enable_txn_prefilter = rng->Bernoulli(0.7);
  return config;
}

std::string ToCsv(const std::vector<FlippingPattern>& patterns,
                  const ItemDictionary& dict) {
  std::ostringstream oss;
  EXPECT_TRUE(WritePatternsCsv(patterns, &dict, oss).ok());
  return oss.str();
}

std::string DescribeConfig(const MiningConfig& config) {
  return "gamma=" + std::to_string(config.gamma) +
         " epsilon=" + std::to_string(config.epsilon) +
         " minsup0=" + std::to_string(config.min_support[0]) +
         " measure=" + std::to_string(static_cast<int>(config.measure)) +
         " counter=" + std::string(CounterKindToString(config.counter)) +
         " pruning=" + config.pruning.ToString() +
         " scan_cells=" + std::to_string(config.enable_scan_cells) +
         " pipelining=" + std::to_string(config.enable_pipelining) +
         " row_overlap=" + std::to_string(config.enable_row_overlap) +
         " arena_counters=" +
         std::to_string(config.enable_arena_scan_counters) +
         " skipping=" +
         std::to_string(config.enable_segment_skipping) +
         " flat_trie=" + std::to_string(config.enable_flat_trie) +
         " prefilter=" + std::to_string(config.enable_txn_prefilter);
}

/// Runs one round; returns the oracle's pattern count so the suite
/// can prove it is not passing vacuously on empty answer sets.
size_t RunRound(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);

  // Dataset shape.
  const auto num_roots = static_cast<uint32_t>(3 + rng.Below(4));
  const auto fanout = static_cast<uint32_t>(2 + rng.Below(2));
  const auto depth = static_cast<uint32_t>(2 + rng.Below(3));
  const auto num_txns = static_cast<uint32_t>(200 + rng.Below(600));
  const auto max_width = static_cast<uint32_t>(4 + rng.Below(7));
  // Small, shard-misaligned segments so v2 skipping decisions differ
  // from the scan sharding.
  const auto segment_txns = static_cast<uint32_t>(24 + rng.Below(80));

  const testutil::Dataset data = testutil::RandomDataset(
      seed, num_roots, fanout, depth, num_txns, max_width);
  RoundInputs inputs = MakeRoundInputs(seed, data, segment_txns);
  const MiningConfig config = RandomConfig(&rng);
  const auto num_batches = static_cast<uint32_t>(1 + rng.Below(3));
  // Cancellation dimension: about half the rounds run every miner with
  // a live but never-firing CancelToken attached. A present-but-unfired
  // token must be byte-invisible — any divergence here means the cancel
  // polling perturbed the answer set.
  const bool with_token = rng.Bernoulli(0.5);
  CancelToken unfired_token;
  unfired_token.SetDeadlineAfterMs(60 * 60 * 1000);
  const CancelToken* run_token = with_token ? &unfired_token : nullptr;

  const std::string repro =
      "seed=" + std::to_string(seed) +
      " (repro: FLIPPER_FUZZ_SEED=" + std::to_string(seed) +
      " FLIPPER_FUZZ_ITERS=1 ./fuzz_differential_test)\n  dataset: " +
      "roots=" + std::to_string(num_roots) +
      " fanout=" + std::to_string(fanout) +
      " depth=" + std::to_string(depth) +
      " txns=" + std::to_string(num_txns) +
      " segment_txns=" + std::to_string(segment_txns) +
      " append_batches=" + std::to_string(num_batches) +
      " unfired_token=" + std::to_string(with_token) +
      "\n  config: " + DescribeConfig(config);
  SCOPED_TRACE(repro);

  const std::string appended_path = WriteAppendedStore(
      inputs, "fuzz_" + std::to_string(seed), segment_txns, num_batches,
      &rng);

  // The oracle: support-only Apriori over every level, patterns
  // extracted post hoc.
  MiningConfig oracle_config = config;
  oracle_config.num_threads = 1;
  auto oracle =
      NaiveMiner::Run(inputs.db, inputs.taxonomy, oracle_config);
  EXPECT_TRUE(oracle.ok()) << oracle.status();
  if (!oracle.ok()) return 0;
  const std::string expected = ToCsv(oracle->patterns, inputs.dict);

  auto v1 = storage::StoreReader::Open(inputs.v1_path);
  auto v2 = storage::StoreReader::Open(inputs.v2_path);
  auto appended = storage::StoreReader::Open(appended_path);
  EXPECT_TRUE(v1.ok()) << v1.status();
  EXPECT_TRUE(v2.ok()) << v2.status();
  EXPECT_TRUE(appended.ok()) << appended.status();
  if (!v1.ok() || !v2.ok() || !appended.ok()) return 0;
  EXPECT_NE(v2->catalog(), nullptr);
  EXPECT_LE(v2->file_size(), v1->file_size());
  EXPECT_TRUE(appended->VerifyChecksums().ok());
  EXPECT_EQ(appended->header().section_count,
            storage::kNumSectionsV2 + 2 * num_batches);
  EXPECT_EQ(appended->db().size(), inputs.db.size());

  struct Source {
    const char* name;
    const TransactionDb* db;
    const Taxonomy* taxonomy;
    const ItemDictionary* dict;
  };
  const Source sources[] = {
      {"text", &inputs.db, &inputs.taxonomy, &inputs.dict},
      {"v1-store", &v1->db(), &v1->taxonomy(), &v1->dict()},
      {"v2-store", &v2->db(), &v2->taxonomy(), &v2->dict()},
      {"v2-appended", &appended->db(), &appended->taxonomy(),
       &appended->dict()},
  };
  for (const int threads : {1, 4}) {
    for (const Source& source : sources) {
      MiningConfig run_config = config;
      run_config.num_threads = threads;
      run_config.cancel = run_token;
      auto run =
          FlipperMiner::Run(*source.db, *source.taxonomy, run_config);
      EXPECT_TRUE(run.ok())
          << source.name << " threads=" << threads << ": "
          << run.status();
      if (!run.ok()) return 0;
      EXPECT_EQ(ToCsv(run->patterns, *source.dict), expected)
          << source.name << " diverged from the naive oracle at "
          << threads << " thread(s)";
      if (!run_config.enable_segment_skipping) {
        EXPECT_EQ(run->stats.segments_skipped, 0u)
            << source.name << " skipped segments with skipping disabled";
      }
      if (!run_config.enable_txn_prefilter) {
        EXPECT_EQ(run->stats.txns_prefiltered, 0u)
            << source.name
            << " prefiltered transactions with the prefilter disabled";
      }
    }
  }

  // Concurrency dimension: the daemon's serving shape. Several miners
  // run AT ONCE over one shared, catalog-bearing LevelViews instance
  // of the v2 store (each run brings its own pool), and every one must
  // still match the oracle byte for byte.
  {
    LevelViews::BuildOptions view_options;
    view_options.build_catalogs = true;
    auto shared_views = LevelViews::Build(v2->db(), v2->taxonomy(),
                                          nullptr, view_options);
    EXPECT_TRUE(shared_views.ok()) << shared_views.status();
    if (!shared_views.ok()) return 0;
    constexpr int kConcurrent = 4;
    std::vector<std::string> bodies(kConcurrent);
    std::vector<std::thread> threads;
    for (int i = 0; i < kConcurrent; ++i) {
      threads.emplace_back([&, i]() {
        MiningConfig run_config = config;
        run_config.num_threads = 1 + i % 3;
        run_config.cancel = run_token;
        auto run = FlipperMiner::Run(v2->db(), v2->taxonomy(),
                                     run_config, &*shared_views);
        ASSERT_TRUE(run.ok())
            << "concurrent run " << i << ": " << run.status();
        bodies[i] = ToCsv(run->patterns, v2->dict());
      });
    }
    for (std::thread& t : threads) t.join();
    for (int i = 0; i < kConcurrent; ++i) {
      EXPECT_EQ(bodies[i], expected)
          << "concurrent shared-views run " << i
          << " diverged from the naive oracle";
    }
  }
  EXPECT_FALSE(unfired_token.Fired());
  return oracle->patterns.size();
}

TEST(FuzzDifferential, RandomDatasetsConfigsAndStores) {
  const auto iters = static_cast<uint64_t>(
      std::max<int64_t>(1, GetEnvInt("FLIPPER_FUZZ_ITERS", 10)));
  const auto master = static_cast<uint64_t>(
      GetEnvInt("FLIPPER_FUZZ_SEED", 1));
  size_t rounds_with_patterns = 0;
  for (uint64_t round = 0; round < iters; ++round) {
    if (RunRound(master + round) > 0) ++rounds_with_patterns;
    if (::testing::Test::HasFailure()) break;  // first seed is enough
  }
  // A differential suite whose oracle never emits a pattern proves
  // nothing; the default seed is chosen so several rounds do. (Guarded
  // to >= 4 rounds so single-round repro runs of a quiet seed do not
  // trip it.)
  if (iters >= 4) {
    EXPECT_GT(rounds_with_patterns, 0u)
        << "every oracle answer set was empty — the generator or "
           "thresholds regressed";
  }
}

}  // namespace
}  // namespace flipper
