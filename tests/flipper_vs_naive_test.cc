// Differential property suite: on randomized datasets and threshold
// settings, every Flipper pruning configuration must return exactly
// the flipping patterns that the unconstrained NaiveMiner (per-level
// Apriori + post-processing) finds, while evaluating no more
// candidates than the less-pruned configurations.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/flipper_miner.h"
#include "core/naive_miner.h"
#include "test_util.h"

namespace flipper {
namespace {

using testutil::Dataset;
using testutil::RandomDataset;

struct DiffCase {
  uint64_t seed;
  double gamma;
  double epsilon;
  double theta;  // shared per-level support fraction
};

class FlipperVsNaive : public ::testing::TestWithParam<DiffCase> {};

MiningConfig MakeConfig(const DiffCase& c, int height) {
  MiningConfig config;
  config.gamma = c.gamma;
  config.epsilon = c.epsilon;
  // Non-increasing per-level thresholds ending at c.theta.
  for (int h = 0; h < height; ++h) {
    config.min_support.push_back(c.theta * (height - h));
  }
  return config;
}

TEST_P(FlipperVsNaive, AllConfigsMatchOracle) {
  const DiffCase c = GetParam();
  Dataset data = RandomDataset(c.seed);
  MiningConfig config = MakeConfig(c, data.taxonomy.height());

  auto oracle = NaiveMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(oracle.ok()) << oracle.status();

  uint64_t prev_counted = ~uint64_t{0};
  for (PruningOptions pruning :
       {PruningOptions::Basic(), PruningOptions::FlippingOnly(),
        PruningOptions::FlippingTpg(), PruningOptions::Full()}) {
    config.pruning = pruning;
    auto result = FlipperMiner::Run(data.db, data.taxonomy, config);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(SamePatterns(oracle->patterns, result->patterns))
        << "pruning=" << pruning.ToString() << " seed=" << c.seed
        << " oracle=" << oracle->patterns.size()
        << " got=" << result->patterns.size();
    // Each additional pruning layer may only shrink the candidate
    // workload.
    EXPECT_LE(result->stats.total_counted, prev_counted)
        << "pruning=" << pruning.ToString() << " seed=" << c.seed;
    prev_counted = result->stats.total_counted;

    // Every reported pattern satisfies the Definition-2 invariants.
    for (const FlippingPattern& p : result->patterns) {
      EXPECT_TRUE(p.IsValidFlip());
      EXPECT_EQ(static_cast<int>(p.chain.size()),
                data.taxonomy.height());
      // Items descend from distinct level-1 roots.
      Itemset roots = p.leaf_itemset.Map(
          [&](ItemId it) { return data.taxonomy.RootOf(it); });
      EXPECT_EQ(roots.size(), p.leaf_itemset.size());
    }
  }
}

TEST_P(FlipperVsNaive, CountersAgree) {
  const DiffCase c = GetParam();
  Dataset data = RandomDataset(c.seed ^ 0x9e3779b9u);
  MiningConfig config = MakeConfig(c, data.taxonomy.height());
  config.counter = CounterKind::kHorizontal;
  auto horizontal = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(horizontal.ok()) << horizontal.status();
  config.counter = CounterKind::kVertical;
  auto vertical = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(vertical.ok()) << vertical.status();
  EXPECT_TRUE(SamePatterns(horizontal->patterns, vertical->patterns));
}

std::vector<DiffCase> MakeCases() {
  std::vector<DiffCase> cases;
  uint64_t seed = 1;
  for (double gamma : {0.45, 0.6}) {
    for (double epsilon : {0.15, 0.25}) {
      for (double theta : {0.005, 0.02}) {
        for (int i = 0; i < 4; ++i) {
          cases.push_back({seed++, gamma, epsilon, theta});
        }
      }
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<DiffCase>& param) {
  const DiffCase& c = param.param;
  std::string name = "seed";
  name += std::to_string(c.seed);
  name += "_g";
  name += std::to_string(static_cast<int>(c.gamma * 100));
  name += "_e";
  name += std::to_string(static_cast<int>(c.epsilon * 100));
  name += "_t";
  name += std::to_string(static_cast<int>(c.theta * 1000));
  return name;
}

INSTANTIATE_TEST_SUITE_P(Randomized, FlipperVsNaive,
                         ::testing::ValuesIn(MakeCases()), CaseName);

}  // namespace
}  // namespace flipper
