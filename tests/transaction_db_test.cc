// TransactionDb storage, generalization and the vertical index.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"
#include "test_util.h"

namespace flipper {
namespace {

TEST(TransactionDb, AddSortsAndDedupes) {
  TransactionDb db;
  db.Add({5, 1, 3, 1, 5});
  ASSERT_EQ(db.size(), 1u);
  auto txn = db.Get(0);
  ASSERT_EQ(txn.size(), 3u);
  EXPECT_EQ(txn[0], 1u);
  EXPECT_EQ(txn[1], 3u);
  EXPECT_EQ(txn[2], 5u);
  EXPECT_EQ(db.max_width(), 3u);
  EXPECT_EQ(db.alphabet_size(), 6u);
}

TEST(TransactionDb, EmptyTransactionsAllowed) {
  TransactionDb db;
  db.Add(std::initializer_list<ItemId>{});
  db.Add({2});
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.Get(0).size(), 0u);
  EXPECT_DOUBLE_EQ(db.avg_width(), 0.5);
}

TEST(TransactionDb, CountSupportAndContains) {
  TransactionDb db;
  db.Add({1, 2, 3});
  db.Add({2, 3});
  db.Add({1, 3});
  EXPECT_EQ(db.CountSupport(Itemset{3}), 3u);
  EXPECT_EQ(db.CountSupport(Itemset{2, 3}), 2u);
  EXPECT_EQ(db.CountSupport(Itemset{1, 2, 3}), 1u);
  EXPECT_EQ(db.CountSupport(Itemset{4}), 0u);
  EXPECT_TRUE(db.Contains(0, Itemset{1, 3}));
  EXPECT_FALSE(db.Contains(1, Itemset{1}));
}

TEST(TransactionDb, ItemFrequencies) {
  TransactionDb db;
  db.Add({0, 1});
  db.Add({1, 2});
  db.Add({1});
  const std::vector<uint32_t> freq = db.ItemFrequencies();
  ASSERT_EQ(freq.size(), 3u);
  EXPECT_EQ(freq[0], 1u);
  EXPECT_EQ(freq[1], 3u);
  EXPECT_EQ(freq[2], 1u);
}

TEST(TransactionDb, GeneralizeCollapsesAndDrops) {
  TransactionDb db;
  db.Add({0, 1, 2});
  db.Add({2, 3});
  // 0,1 -> 10; 2 -> 11; 3 -> dropped.
  std::vector<ItemId> lut = {10, 10, 11, kInvalidItem};
  TransactionDb gen = db.Generalize(lut);
  ASSERT_EQ(gen.size(), 2u);
  EXPECT_EQ(gen.Get(0).size(), 2u);  // {10, 11}
  EXPECT_EQ(gen.Get(1).size(), 1u);  // {11}
  EXPECT_EQ(gen.CountSupport(Itemset{10, 11}), 1u);
}

TEST(TransactionDb, GeneralizeMatchesPaperFigure4) {
  testutil::Dataset data = testutil::PaperToyDataset();
  // Level-1 view of D1 = {a, b}.
  TransactionDb db1 =
      data.db.Generalize(data.taxonomy.LevelMap(1));
  const ItemId a = *data.dict.Find("a");
  const ItemId b = *data.dict.Find("b");
  EXPECT_EQ(db1.Get(0).size(), 2u);
  EXPECT_EQ(db1.CountSupport(Itemset::Pair(a, b)), 7u);
}

TEST(VerticalIndex, MatchesScanCounting) {
  Rng rng(99);
  TransactionDb db;
  std::vector<ItemId> txn;
  for (int t = 0; t < 500; ++t) {
    txn.clear();
    const int width = 1 + static_cast<int>(rng.Below(8));
    for (int i = 0; i < width; ++i) {
      txn.push_back(static_cast<ItemId>(rng.Below(30)));
    }
    db.Add(txn);
  }
  VerticalIndex index(db);
  EXPECT_EQ(index.universe(), db.size());
  const std::vector<uint32_t> freq = db.ItemFrequencies();
  for (ItemId item = 0; item < db.alphabet_size(); ++item) {
    EXPECT_EQ(index.Support(item), freq[item]);
  }
  for (int trial = 0; trial < 100; ++trial) {
    Itemset candidate;
    const int k = 1 + static_cast<int>(rng.Below(4));
    for (int i = 0; i < k; ++i) {
      candidate.Insert(static_cast<ItemId>(rng.Below(30)));
    }
    EXPECT_EQ(index.Support(candidate), db.CountSupport(candidate))
        << candidate.ToString();
  }
}

TEST(VerticalIndex, UnknownItemsHaveZeroSupport) {
  TransactionDb db;
  db.Add({0, 1});
  VerticalIndex index(db);
  EXPECT_EQ(index.Support(ItemId{7}), 0u);
  EXPECT_EQ(index.Support(Itemset{0, 7}), 0u);
}

}  // namespace
}  // namespace flipper
