// TidSet unit + property tests: representation equivalence and
// intersection correctness against a reference implementation.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "data/tidset.h"

namespace flipper {
namespace {

std::vector<TxnId> RandomSortedTids(Rng* rng, uint32_t universe,
                                    double density) {
  std::vector<TxnId> tids;
  for (TxnId t = 0; t < universe; ++t) {
    if (rng->Bernoulli(density)) tids.push_back(t);
  }
  return tids;
}

std::vector<TxnId> ReferenceIntersect(const std::vector<TxnId>& a,
                                      const std::vector<TxnId>& b) {
  std::vector<TxnId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(TidSet, BuildSelectsRepresentationByDensity) {
  std::vector<TxnId> sparse = {1, 500, 900};
  std::vector<TxnId> dense;
  for (TxnId t = 0; t < 500; ++t) dense.push_back(t * 2);

  EXPECT_EQ(TidSet::Build(sparse, 1000).mode(), TidSet::Mode::kSparse);
  EXPECT_EQ(TidSet::Build(dense, 1000).mode(), TidSet::Mode::kDense);
}

TEST(TidSet, RoundTripBothModes) {
  std::vector<TxnId> tids = {0, 3, 17, 63, 64, 65, 127, 999};
  for (auto set : {TidSet::BuildDense(tids, 1000),
                   TidSet::BuildSparse(tids, 1000)}) {
    EXPECT_EQ(set.cardinality(), tids.size());
    EXPECT_EQ(set.ToVector(), tids);
    for (TxnId t : tids) EXPECT_TRUE(set.Contains(t));
    EXPECT_FALSE(set.Contains(1));
    EXPECT_FALSE(set.Contains(2000));
  }
}

class TidSetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TidSetProperty, PairwiseIntersectionsMatchReference) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const uint32_t universe =
        64 + static_cast<uint32_t>(rng.Below(2000));
    const double da = rng.NextDouble() * 0.4;
    const double db = rng.NextDouble() * 0.4;
    const auto ta = RandomSortedTids(&rng, universe, da);
    const auto tb = RandomSortedTids(&rng, universe, db);
    const uint32_t expected =
        static_cast<uint32_t>(ReferenceIntersect(ta, tb).size());

    // All four mode combinations must agree.
    const TidSet variants_a[] = {TidSet::BuildDense(ta, universe),
                                 TidSet::BuildSparse(ta, universe)};
    const TidSet variants_b[] = {TidSet::BuildDense(tb, universe),
                                 TidSet::BuildSparse(tb, universe)};
    for (const TidSet& a : variants_a) {
      for (const TidSet& b : variants_b) {
        EXPECT_EQ(TidSet::IntersectCount(a, b), expected);
      }
    }
  }
}

TEST_P(TidSetProperty, KWayIntersection) {
  Rng rng(GetParam() ^ 0x5555);
  for (int trial = 0; trial < 25; ++trial) {
    const uint32_t universe =
        128 + static_cast<uint32_t>(rng.Below(1000));
    const int k = 2 + static_cast<int>(rng.Below(4));
    std::vector<std::vector<TxnId>> lists;
    std::vector<TidSet> sets;
    for (int i = 0; i < k; ++i) {
      lists.push_back(
          RandomSortedTids(&rng, universe, 0.05 + rng.NextDouble() * 0.3));
      sets.push_back(TidSet::Build(lists.back(), universe));
    }
    std::vector<TxnId> expected = lists[0];
    for (int i = 1; i < k; ++i) {
      std::vector<TxnId> next = ReferenceIntersect(expected, lists[i]);
      expected.swap(next);
    }
    std::vector<const TidSet*> ptrs;
    for (const TidSet& s : sets) ptrs.push_back(&s);
    EXPECT_EQ(TidSet::IntersectCountMany(ptrs),
              static_cast<uint32_t>(expected.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TidSetProperty,
                         ::testing::Values(11, 22, 33));

TEST(TidSet, GallopingPathExercised) {
  // Extreme size ratio routes into the galloping branch.
  std::vector<TxnId> small = {100, 5000, 9999};
  std::vector<TxnId> big;
  for (TxnId t = 0; t < 10000; t += 2) big.push_back(t);
  TidSet a = TidSet::BuildSparse(small, 10000);
  TidSet b = TidSet::BuildSparse(big, 10000);
  EXPECT_EQ(TidSet::IntersectCount(a, b), 2u);  // 100 and 5000 are even
}

TEST(TidSet, EmptySets) {
  TidSet empty = TidSet::Build({}, 100);
  TidSet some = TidSet::Build(std::vector<TxnId>{1, 2, 3}, 100);
  EXPECT_EQ(empty.cardinality(), 0u);
  EXPECT_EQ(TidSet::IntersectCount(empty, some), 0u);
  const TidSet* ptrs[] = {&empty, &some};
  EXPECT_EQ(TidSet::IntersectCountMany(ptrs), 0u);
}

}  // namespace
}  // namespace flipper
