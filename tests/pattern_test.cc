// FlippingPattern invariants, rendering, ranking (top-K extension),
// config validation and basket I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "core/config.h"
#include "core/pattern.h"
#include "core/topk.h"
#include "data/db_io.h"

namespace flipper {
namespace {

FlippingPattern MakePattern(std::vector<double> corrs,
                            Itemset leaf = Itemset{10, 20}) {
  FlippingPattern p;
  p.leaf_itemset = leaf;
  Label label = corrs[0] >= 0.5 ? Label::kPositive : Label::kNegative;
  for (size_t h = 0; h < corrs.size(); ++h) {
    LevelStat stat;
    stat.level = static_cast<int>(h + 1);
    stat.itemset = leaf;
    stat.support = 10;
    stat.corr = corrs[h];
    stat.label = label;
    label = label == Label::kPositive ? Label::kNegative
                                      : Label::kPositive;
    p.chain.push_back(stat);
  }
  return p;
}

TEST(Pattern, FlipGapIsWeakestConsecutiveGap) {
  FlippingPattern p = MakePattern({0.9, 0.1, 0.6});
  // Gaps: |0.9-0.1| = 0.8, |0.1-0.6| = 0.5 -> FlipGap = 0.5.
  EXPECT_NEAR(p.FlipGap(), 0.5, 1e-12);
  EXPECT_EQ(MakePattern({0.9}).FlipGap(), 0.0);
}

TEST(Pattern, IsValidFlip) {
  EXPECT_TRUE(MakePattern({0.9, 0.1, 0.8}).IsValidFlip());
  FlippingPattern broken = MakePattern({0.9, 0.1});
  broken.chain[1].label = Label::kPositive;  // no flip
  EXPECT_FALSE(broken.IsValidFlip());
  broken = MakePattern({0.9, 0.1});
  broken.chain[1].label = Label::kNone;
  EXPECT_FALSE(broken.IsValidFlip());
  FlippingPattern empty;
  EXPECT_FALSE(empty.IsValidFlip());
}

TEST(Pattern, ToStringRendersLabelsAndNames) {
  ItemDictionary dict;
  const ItemId milk = dict.Intern("milk");
  const ItemId bread = dict.Intern("bread");
  FlippingPattern p = MakePattern({0.9, 0.1}, Itemset::Pair(milk, bread));
  for (auto& stat : p.chain) stat.itemset = Itemset::Pair(milk, bread);
  const std::string with_names = p.ToString(&dict);
  EXPECT_NE(with_names.find("milk"), std::string::npos);
  EXPECT_NE(with_names.find("POS"), std::string::npos);
  EXPECT_NE(with_names.find("NEG"), std::string::npos);
  const std::string without = p.ToString();
  EXPECT_NE(without.find("{0, 1}"), std::string::npos);
}

TEST(Pattern, SamePatternsComparesContents) {
  std::vector<FlippingPattern> a = {MakePattern({0.9, 0.1}),
                                    MakePattern({0.8, 0.2}, Itemset{1, 2})};
  std::vector<FlippingPattern> b = {MakePattern({0.8, 0.2}, Itemset{1, 2}),
                                    MakePattern({0.9, 0.1})};
  EXPECT_TRUE(SamePatterns(a, b));  // order-insensitive
  b[0].chain[0].label = Label::kNegative;
  b[0].chain[1].label = Label::kPositive;
  EXPECT_FALSE(SamePatterns(a, b));
  b.pop_back();
  EXPECT_FALSE(SamePatterns(a, b));
}

TEST(TopK, RanksByFlipGap) {
  std::vector<FlippingPattern> patterns = {
      MakePattern({0.9, 0.1}, Itemset{1, 2}),    // gap 0.8
      MakePattern({0.6, 0.4}, Itemset{3, 4}),    // gap 0.2
      MakePattern({0.99, 0.01}, Itemset{5, 6}),  // gap 0.98
  };
  auto top = TopKMostFlipping(patterns, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].leaf_itemset, (Itemset{5, 6}));
  EXPECT_EQ(top[1].leaf_itemset, (Itemset{1, 2}));
  // k larger than the pool returns everything.
  EXPECT_EQ(TopKMostFlipping(patterns, 10).size(), 3u);
}

TEST(Config, Validation) {
  MiningConfig config;
  config.min_support = {0.01, 0.005};
  EXPECT_TRUE(config.Validate().ok());

  config.gamma = 0.1;
  config.epsilon = 0.1;  // gamma must exceed epsilon
  EXPECT_FALSE(config.Validate().ok());

  config = {};
  config.min_support = {};  // empty thresholds
  EXPECT_FALSE(config.Validate().ok());

  config = {};
  config.min_support = {0.001, 0.01};  // increasing thresholds
  EXPECT_FALSE(config.Validate().ok());

  config = {};
  config.min_support = {1.5};  // out of range
  EXPECT_FALSE(config.Validate().ok());

  config = {};
  config.min_support = {0.1};
  config.epsilon = -0.1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(Config, MinCountSemantics) {
  MiningConfig config;
  config.min_support = {0.01, 0.001};
  EXPECT_EQ(config.MinCount(1, 10000), 100u);
  EXPECT_EQ(config.MinCount(2, 10000), 10u);
  // Deeper levels reuse the last threshold.
  EXPECT_EQ(config.MinCount(5, 10000), 10u);
  // Never below 1.
  EXPECT_EQ(config.MinCount(2, 10), 1u);
  // Ceiling semantics.
  EXPECT_EQ(config.MinCount(1, 150), 2u);
}

TEST(Config, PruningNames) {
  EXPECT_EQ(PruningOptions::Basic().ToString(), "support-only");
  EXPECT_EQ(PruningOptions::FlippingOnly().ToString(), "flipping");
  EXPECT_EQ(PruningOptions::FlippingTpg().ToString(), "flipping+tpg");
  EXPECT_EQ(PruningOptions::Full().ToString(), "flipping+tpg+sibp");
}

TEST(BasketIo, RoundTrip) {
  ItemDictionary dict;
  TransactionDb db;
  db.Add({dict.Intern("milk"), dict.Intern("bread")});
  db.Add({dict.Intern("beer")});
  std::ostringstream oss;
  ASSERT_TRUE(WriteBasketStream(db, dict, oss).ok());

  ItemDictionary dict2;
  std::istringstream iss(oss.str());
  auto reloaded = ReadBasketStream(iss, &dict2);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->size(), 2u);
  EXPECT_EQ(reloaded->Get(0).size(), 2u);
  EXPECT_TRUE(dict2.Contains("beer"));
}

TEST(BasketIo, SkipsCommentsAndBlankLines) {
  ItemDictionary dict;
  std::istringstream in("# header\nmilk bread\n\n  \nbeer\n");
  auto db = ReadBasketStream(in, &dict);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 2u);
}

TEST(BasketIo, MissingFileFails) {
  ItemDictionary dict;
  auto result = ReadBasketFile("/nonexistent/db.basket", &dict);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(BasketIo, WriteRejectsUnknownIds) {
  ItemDictionary dict;
  TransactionDb db;
  db.Add({42});  // never interned
  std::ostringstream oss;
  EXPECT_FALSE(WriteBasketStream(db, dict, oss).ok());
}

}  // namespace
}  // namespace flipper
