// Dedicated invariance grid for the counting fast paths: mined output
// must be byte-identical across {flat trie, txn prefilter, row
// overlap} × {on, off} × {1, 4 threads} × {text, v1 store, v2 store}
// inputs, across every probe kernel the host can force
// (avx2/sse2/portable/scalar), and the horizontal counter's
// trie/buffer reuse across consecutive counts (the row seam) must
// reproduce fresh-counter supports exactly.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/candidate_trie.h"
#include "core/flipper_miner.h"
#include "core/pattern_io.h"
#include "core/support_counting.h"
#include "data/db_io.h"
#include "datagen/groceries_sim.h"
#include "storage/store_reader.h"
#include "storage/store_writer.h"
#include "taxonomy/taxonomy_io.h"
#include "test_util.h"

namespace flipper {
namespace {

std::string ToCsv(const std::vector<FlippingPattern>& patterns,
                  const ItemDictionary& dict) {
  std::ostringstream oss;
  EXPECT_TRUE(WritePatternsCsv(patterns, &dict, oss).ok());
  return oss.str();
}

TEST(TrieInvariance, MinedOutputIdenticalAcrossTrieModes) {
  // The groceries simulator plants flipping patterns by construction,
  // so the grid cannot pass vacuously; ids are re-canonicalized
  // through the text round trip exactly as the CLI would assign them.
  GroceriesParams params;
  params.num_transactions = 4'900;
  auto generated = GenerateGroceries(params);
  ASSERT_TRUE(generated.ok()) << generated.status();

  const std::string dir = ::testing::TempDir();
  const std::string basket = dir + "trie_invariance.basket";
  const std::string taxonomy_path = dir + "trie_invariance.taxonomy";
  const std::string v1_path = dir + "trie_invariance_v1.fdb";
  const std::string v2_path = dir + "trie_invariance_v2.fdb";
  ASSERT_TRUE(WriteTaxonomyFile(generated->taxonomy, generated->dict,
                                taxonomy_path)
                  .ok());
  ASSERT_TRUE(
      WriteBasketFile(generated->db, generated->dict, basket).ok());

  ItemDictionary dict;
  auto taxonomy = ReadTaxonomyFile(taxonomy_path, &dict);
  ASSERT_TRUE(taxonomy.ok()) << taxonomy.status();
  auto db = ReadBasketFile(basket, &dict);
  ASSERT_TRUE(db.ok()) << db.status();

  storage::StoreWriter::Options store_options;
  store_options.segment_txns = 256;  // several segments per shard
  store_options.version = storage::kFormatVersionV1;
  ASSERT_TRUE(storage::WriteStoreFile(v1_path, *db, dict, *taxonomy,
                                      store_options)
                  .ok());
  store_options.version = storage::kFormatVersionV2;
  ASSERT_TRUE(storage::WriteStoreFile(v2_path, *db, dict, *taxonomy,
                                      store_options)
                  .ok());
  auto v1 = storage::StoreReader::Open(v1_path);
  auto v2 = storage::StoreReader::Open(v2_path);
  ASSERT_TRUE(v1.ok()) << v1.status();
  ASSERT_TRUE(v2.ok()) << v2.status();

  const MiningConfig config = generated->paper_config;

  // Reference: the default fast paths on the text-loaded inputs (the
  // miner-vs-oracle equivalence itself is the fuzz harness's job).
  MiningConfig reference_config = config;
  reference_config.num_threads = 1;
  auto reference = FlipperMiner::Run(*db, *taxonomy, reference_config);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string expected = ToCsv(reference->patterns, dict);
  EXPECT_FALSE(reference->patterns.empty())
      << "vacuous grid: the reference answer set is empty";

  struct Source {
    const char* name;
    const TransactionDb* db;
    const Taxonomy* taxonomy;
    const ItemDictionary* dict;
  };
  const Source sources[] = {
      {"text", &*db, &*taxonomy, &dict},
      {"v1-store", &v1->db(), &v1->taxonomy(), &v1->dict()},
      {"v2-store", &v2->db(), &v2->taxonomy(), &v2->dict()},
  };
  for (const bool flat : {true, false}) {
    for (const bool prefilter : {true, false}) {
      for (const bool row_overlap : {true, false}) {
        for (const int threads : {1, 4}) {
          for (const Source& source : sources) {
            MiningConfig run_config = config;
            run_config.enable_flat_trie = flat;
            run_config.enable_txn_prefilter = prefilter;
            run_config.enable_row_overlap = row_overlap;
            run_config.num_threads = threads;
            auto run = FlipperMiner::Run(*source.db, *source.taxonomy,
                                         run_config);
            ASSERT_TRUE(run.ok()) << run.status();
            EXPECT_EQ(ToCsv(run->patterns, *source.dict), expected)
                << source.name << " flat=" << flat
                << " prefilter=" << prefilter
                << " row_overlap=" << row_overlap
                << " threads=" << threads;
            if (!prefilter) {
              EXPECT_EQ(run->stats.txns_prefiltered, 0u)
                  << "prefilter disabled but transactions were "
                     "rejected";
            }
          }
        }
      }
    }
  }

  // Every probe kernel the host can run must mine the same bytes: the
  // runtime dispatch may pick any of them depending on the CPU, so a
  // divergence here is a silent wrong-count on other hardware.
  for (const char* kernel : trie_probe::AvailableKernelNames()) {
    ASSERT_TRUE(trie_probe::ForcePackedKernel(kernel).ok()) << kernel;
    EXPECT_STREQ(trie_probe::PackedKernelName(), kernel);
    for (const int threads : {1, 4}) {
      MiningConfig run_config = config;
      run_config.num_threads = threads;
      auto run = FlipperMiner::Run(*db, *taxonomy, run_config);
      ASSERT_TRUE(run.ok()) << run.status();
      EXPECT_EQ(ToCsv(run->patterns, dict), expected)
          << "kernel=" << kernel << " threads=" << threads;
    }
  }
  trie_probe::ResetPackedKernel();
}

TEST(TrieInvariance, CounterReuseMatchesFreshCounters) {
  // The horizontal counter keeps one trie arena + shard buffers across
  // counts; feeding it several different batches in sequence (a row's
  // cells) must reproduce what fresh counters compute, at 1 and 4
  // threads, sync and async.
  const testutil::Dataset data = testutil::RandomDataset(
      616, /*num_roots=*/6, /*fanout=*/3, /*depth=*/3,
      /*num_txns=*/3000, /*max_width=*/7);
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    auto views = LevelViews::Build(data.db, data.taxonomy, &pool);
    ASSERT_TRUE(views.ok()) << views.status();

    Rng rng(616);
    auto reused = MakeCounter(CounterKind::kHorizontal, &pool);
    const int h = data.taxonomy.height();
    const auto& nodes = data.taxonomy.NodesAtLevel(h);
    for (int round = 0; round < 5; ++round) {
      const int k = 2 + round % 3;
      std::vector<Itemset> candidates;
      std::unordered_set<Itemset, ItemsetHash> seen;
      for (int c = 0; c < 60 + round * 25; ++c) {
        Itemset s;
        while (s.size() < k) {
          s.Insert(nodes[rng.Below(nodes.size())]);
        }
        if (seen.insert(s).second) candidates.push_back(s);
      }
      std::vector<uint32_t> fresh_supports;
      ASSERT_TRUE(MakeCounter(CounterKind::kHorizontal, &pool)
                      ->Count(&*views, h, candidates, &fresh_supports)
                      .ok());

      std::vector<uint32_t> reused_sync;
      ASSERT_TRUE(
          reused->Count(&*views, h, candidates, &reused_sync).ok());
      EXPECT_EQ(reused_sync, fresh_supports)
          << "sync round " << round << " threads " << threads;

      std::vector<uint32_t> reused_async;
      CountFuture future =
          reused->StartCount(&*views, h, candidates, &reused_async);
      ASSERT_TRUE(future.Join().ok());
      EXPECT_EQ(reused_async, fresh_supports)
          << "async round " << round << " threads " << threads;
    }
  }
}

TEST(TrieInvariance, SharedBatchScratchMatchesFreshScratch) {
  // CountBatchWithTrie with one warm CountBatchScratch across batches
  // (and across layout options) equals scratch-free calls.
  const testutil::Dataset data = testutil::RandomDataset(717);
  Rng rng(717);
  const auto& leaves = data.taxonomy.Leaves();
  CountBatchScratch scratch;
  for (int round = 0; round < 6; ++round) {
    const int k = 1 + round % 3;
    std::vector<Itemset> candidates;
    std::unordered_set<Itemset, ItemsetHash> seen;
    for (int c = 0; c < 50; ++c) {
      Itemset s;
      while (s.size() < k) {
        s.Insert(leaves[rng.Below(leaves.size())]);
      }
      if (seen.insert(s).second) candidates.push_back(s);
    }
    std::vector<uint32_t> plain(candidates.size());
    CountBatchWithTrie(data.db, candidates, nullptr, plain);

    CountBatchOptions options;
    options.scratch = &scratch;
    options.trie.flat = round % 2 == 0;  // alternate layouts in place
    std::vector<uint32_t> warm(candidates.size());
    CountBatchWithTrie(data.db, candidates, nullptr, warm, nullptr,
                       nullptr, options);
    EXPECT_EQ(warm, plain) << "round " << round;
  }
}

}  // namespace
}  // namespace flipper
