// Scan-skipping invariants: the segment catalog may only ever remove
// work, never change an answer. For every datagen scenario (and a
// skewed quest profile where skipping demonstrably fires), mining
// with MiningConfig::enable_segment_skipping on and off must produce
// identical patterns, per-cell stats and supports; with it off,
// MiningStats::segments_skipped must be exactly 0. A unit-level check
// drives CountBatchWithTrie directly against a segment-local database
// where the skip flags provably clear.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/flipper_miner.h"
#include "core/naive_miner.h"
#include "core/support_counting.h"
#include "data/segment_catalog.h"
#include "datagen/census_sim.h"
#include "datagen/groceries_sim.h"
#include "datagen/medline_sim.h"
#include "datagen/quest_gen.h"
#include "datagen/taxonomy_gen.h"

namespace flipper {
namespace {

/// Pattern chains + per-cell candidate accounting; everything that
/// must not move when segments are skipped. (Wall-clock and the skip
/// counter itself are excluded — the counter is asserted separately.)
std::string Fingerprint(const MiningResult& result) {
  std::string out;
  for (const FlippingPattern& p : result.patterns) {
    out += p.ToString() + "\n";
  }
  for (const CellStats& c : result.stats.cells) {
    out += "cell " + std::to_string(c.h) + "," + std::to_string(c.k) +
           ": g=" + std::to_string(c.generated) +
           " c=" + std::to_string(c.counted) +
           " f=" + std::to_string(c.frequent) +
           " l=" + std::to_string(c.labeled) +
           " a=" + std::to_string(c.alive) + "\n";
  }
  out += "pos=" + std::to_string(result.stats.num_positive) +
         " neg=" + std::to_string(result.stats.num_negative) +
         " scans=" + std::to_string(result.stats.db_scans) + "\n";
  return out;
}

struct Scenario {
  std::string name;
  ItemDictionary dict;
  Taxonomy taxonomy;
  TransactionDb db;
  MiningConfig config;
};

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "groceries";
    GroceriesParams params;
    params.num_transactions = 2'500;
    auto data = GenerateGroceries(params);
    EXPECT_TRUE(data.ok()) << data.status();
    s.dict = std::move(data->dict);
    s.taxonomy = std::move(data->taxonomy);
    s.db = std::move(data->db);
    s.config = data->paper_config;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "census";
    CensusParams params;
    params.num_records = 3'000;
    auto data = GenerateCensus(params);
    EXPECT_TRUE(data.ok()) << data.status();
    s.dict = std::move(data->dict);
    s.taxonomy = std::move(data->taxonomy);
    s.db = std::move(data->db);
    s.config = data->paper_config;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "medline";
    MedlineParams params;
    params.num_citations = 3'000;
    auto data = GenerateMedline(params);
    EXPECT_TRUE(data.ok()) << data.status();
    s.dict = std::move(data->dict);
    s.taxonomy = std::move(data->taxonomy);
    s.db = std::move(data->db);
    s.config = data->paper_config;
    scenarios.push_back(std::move(s));
  }
  {
    // Stationary quest, scan-driven cells in play.
    Scenario s;
    s.name = "quest";
    auto taxonomy = GenerateBalancedTaxonomy(TaxonomyGenParams(), &s.dict);
    EXPECT_TRUE(taxonomy.ok()) << taxonomy.status();
    s.taxonomy = std::move(taxonomy).value();
    QuestParams quest;
    quest.num_transactions = 3'000;
    quest.seed = 42;
    auto db = GenerateQuest(quest, s.taxonomy);
    EXPECT_TRUE(db.ok()) << db.status();
    s.db = std::move(db).value();
    s.config.gamma = 0.3;
    s.config.epsilon = 0.1;
    s.config.min_support = {0.01, 0.001, 0.0005, 0.0001};
    s.config.pruning = PruningOptions::FlippingOnly();
    scenarios.push_back(std::move(s));
  }
  {
    // Skewed quest: phased pattern pool, so whole transaction ranges
    // lack the frequent vocabulary and skipping genuinely fires.
    Scenario s;
    s.name = "quest-skew";
    auto taxonomy = GenerateBalancedTaxonomy(TaxonomyGenParams(), &s.dict);
    EXPECT_TRUE(taxonomy.ok()) << taxonomy.status();
    s.taxonomy = std::move(taxonomy).value();
    QuestParams quest;
    quest.num_transactions = 8'000;
    quest.phases = 50;
    quest.seed = 11;
    auto db = GenerateQuest(quest, s.taxonomy);
    EXPECT_TRUE(db.ok()) << db.status();
    s.db = std::move(db).value();
    s.config.gamma = 0.3;
    s.config.epsilon = 0.1;
    s.config.min_support = {0.01, 0.006, 0.004, 0.002};
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

TEST(SegmentSkipping, EveryScenarioMinesIdenticallyWithAndWithout) {
  for (Scenario& s : AllScenarios()) {
    SCOPED_TRACE(s.name);
    MiningConfig config = s.config;
    config.num_threads = 1;
    config.enable_segment_skipping = false;
    auto without = FlipperMiner::Run(s.db, s.taxonomy, config);
    ASSERT_TRUE(without.ok()) << without.status();
    EXPECT_EQ(without->stats.segments_skipped, 0u)
        << "skipping disabled must never report skipped segments";
    const std::string reference = Fingerprint(*without);

    for (int threads : {1, 4}) {
      config.num_threads = threads;
      config.enable_segment_skipping = true;
      auto with = FlipperMiner::Run(s.db, s.taxonomy, config);
      ASSERT_TRUE(with.ok()) << with.status();
      EXPECT_EQ(Fingerprint(*with), reference)
          << "threads=" << threads;
    }

    // The naive miner honours the flag the same way.
    config.enable_segment_skipping = false;
    config.num_threads = 1;
    auto naive_without = NaiveMiner::Run(s.db, s.taxonomy, config);
    ASSERT_TRUE(naive_without.ok()) << naive_without.status();
    EXPECT_EQ(naive_without->stats.segments_skipped, 0u);
    config.enable_segment_skipping = true;
    auto naive_with = NaiveMiner::Run(s.db, s.taxonomy, config);
    ASSERT_TRUE(naive_with.ok()) << naive_with.status();
    EXPECT_TRUE(
        SamePatterns(naive_without->patterns, naive_with->patterns));
  }
}

TEST(SegmentSkipping, SkewedScenarioActuallySkips) {
  // Non-vacuity: with small uniform catalog segments over the skewed
  // quest stream, at least one counting scan must prove a segment
  // candidate-free. (The invariant test above would pass trivially if
  // the flags never cleared.)
  Scenario skew;
  for (Scenario& s : AllScenarios()) {
    if (s.name == "quest-skew") skew = std::move(s);
  }
  ASSERT_FALSE(skew.db.empty());

  // Attach a fine-grained catalog through a v0-style uniform split so
  // LevelViews inherits 512-transaction segments.
  auto catalog = std::make_shared<SegmentCatalog>(SegmentCatalog::Build(
      skew.db,
      SegmentCatalog::UniformBoundaries(skew.db.size(), 512)));
  skew.db.AttachSegmentCatalog(catalog);

  MiningConfig config = skew.config;
  config.num_threads = 1;
  config.enable_segment_skipping = true;
  auto result = FlipperMiner::Run(skew.db, skew.taxonomy, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->stats.segments_skipped, 0u)
      << "the skewed scenario no longer exercises segment skipping";
}

TEST(SegmentSkipping, CountBatchWithTrieMatchesWithSegmentLocalItems) {
  // Three segments with disjoint item ranges; candidates confined to
  // one segment's vocabulary must let the other two be skipped while
  // supports stay identical, serial and sharded.
  TransactionDb db;
  for (ItemId base : {0u, 100u, 200u}) {
    for (uint32_t t = 0; t < 700; ++t) {
      db.Add({base + t % 7, base + 7 + t % 5, base + 12 + t % 3});
    }
  }
  const std::vector<uint64_t> boundaries = {0, 700, 1400, 2100};
  const SegmentCatalog catalog =
      SegmentCatalog::Build(db, boundaries);

  std::vector<Itemset> candidates;
  for (ItemId a = 100; a < 107; ++a) {
    for (ItemId b = 107; b < 112; ++b) {
      candidates.push_back(Itemset::Pair(a, b));
    }
  }

  std::vector<uint32_t> plain(candidates.size());
  CountBatchWithTrie(db, candidates, nullptr, plain);

  uint64_t skipped = 0;
  std::vector<uint32_t> skipping(candidates.size());
  CountBatchWithTrie(db, candidates, nullptr, skipping, &catalog,
                     &skipped);
  EXPECT_EQ(plain, skipping);
  EXPECT_EQ(skipped, 2u);  // segments 0 and 2 hold none of the items

  ThreadPool pool(4);
  uint64_t skipped_parallel = 0;
  std::vector<uint32_t> parallel(candidates.size());
  CountBatchWithTrie(db, candidates, &pool, parallel, &catalog,
                     &skipped_parallel);
  EXPECT_EQ(plain, parallel);
  EXPECT_EQ(skipped_parallel, 2u);

  // Sanity: the counted supports are non-trivial.
  uint32_t total = 0;
  for (uint32_t s : plain) total += s;
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace flipper
