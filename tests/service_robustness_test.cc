// Robustness of the serve daemon under deadlines, abandonment and
// socket faults: a deadline firing mid-count must come back as a
// prompt `deadline_exceeded` error while a concurrent healthy query
// stays byte-identical to its solo oracle; a client hanging up
// mid-mine must free its scheduler slot; a sweep of hundreds of
// random mid-frame kills and stalls must leave the daemon serving
// with zero leaked connections or slots; and an un-fired CancelToken
// must be provably invisible in the mined bytes.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/backoff.h"
#include "common/cancellation.h"
#include "common/rng.h"
#include "common/timer.h"
#include "datagen/groceries_sim.h"
#include "datagen/quest_gen.h"
#include "datagen/taxonomy_gen.h"
#include "service/client.h"
#include "service/mine_service.h"
#include "service/protocol.h"
#include "service/query_scheduler.h"
#include "service/server.h"
#include "storage/store_reader.h"
#include "storage/store_writer.h"

namespace flipper {
namespace service {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// --- CancelToken ------------------------------------------------------

TEST(CancelTokenTest, UnfiredFiredAndDeadlineSemantics) {
  CancelToken token;
  EXPECT_FALSE(token.Fired());
  EXPECT_TRUE(token.ToStatus().ok());

  token.Cancel();
  EXPECT_TRUE(token.Fired());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);

  CancelToken lapsed;
  lapsed.SetDeadlineAfterMs(-1);  // already in the past
  EXPECT_TRUE(lapsed.Fired());
  EXPECT_EQ(lapsed.ToStatus().code(), StatusCode::kDeadlineExceeded);

  CancelToken future;
  future.SetDeadlineAfterMs(60 * 60 * 1000);
  EXPECT_FALSE(future.Fired());
  EXPECT_TRUE(future.ToStatus().ok());
}

TEST(CancelTokenTest, ChainedTokenFiresWithItsParent) {
  CancelToken parent;
  CancelToken child;
  child.ChainTo(&parent);
  EXPECT_FALSE(child.Fired());
  parent.Cancel();
  EXPECT_TRUE(child.Fired());
  // A parent fired by explicit cancel classifies as Cancelled even
  // when the child also carries a healthy deadline.
  CancelToken deadline_child;
  deadline_child.ChainTo(&parent);
  deadline_child.SetDeadlineAfterMs(60 * 60 * 1000);
  EXPECT_TRUE(deadline_child.Fired());
  EXPECT_EQ(deadline_child.ToStatus().code(), StatusCode::kCancelled);
}

// --- JitteredBackoff --------------------------------------------------

TEST(JitteredBackoffTest, DelaysStayInHalfOpenWindowAndCap) {
  JitteredBackoff::Options options;
  options.initial_ms = 10;
  options.max_ms = 100;
  JitteredBackoff backoff(42, options);
  int64_t base = 10;
  for (int i = 0; i < 12; ++i) {
    const int delay = backoff.NextDelayMs();
    EXPECT_GE(delay, base / 2) << "step " << i;
    EXPECT_LE(delay, base) << "step " << i;
    base = std::min<int64_t>(base * 2, 100);
  }
  backoff.Reset();
  const int after_reset = backoff.NextDelayMs();
  EXPECT_GE(after_reset, 5);
  EXPECT_LE(after_reset, 10);
  // Same seed, same options: the sequence is deterministic.
  JitteredBackoff twin(42, options);
  JitteredBackoff twin2(42, options);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(twin.NextDelayMs(), twin2.NextDelayMs());
  }
}

// --- scheduler deadlines and shutdown ---------------------------------

TEST(QuerySchedulerTest, QueuedDeadlineLapsesWithoutBlockingSuccessors) {
  QueryScheduler scheduler(/*max_concurrent=*/1, /*max_queued=*/8);
  auto held = scheduler.Admit();
  ASSERT_TRUE(held.ok());

  // A waiter whose deadline lapses in the waiting room leaves with
  // DeadlineExceeded...
  std::thread doomed([&]() {
    auto ticket = scheduler.Admit(std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(50));
    ASSERT_FALSE(ticket.ok());
    EXPECT_EQ(ticket.status().code(), StatusCode::kDeadlineExceeded);
  });
  while (scheduler.stats().waiting < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...and a later arrival queued behind the abandoned turn must still
  // be admitted once the held slot frees (the abandoned-turn sweep).
  std::thread successor([&]() {
    auto ticket = scheduler.Admit();
    EXPECT_TRUE(ticket.ok()) << ticket.status();
  });
  doomed.join();
  EXPECT_EQ(scheduler.stats().timed_out, 1u);
  held = Result<QueryScheduler::Ticket>(QueryScheduler::Ticket());
  successor.join();
  EXPECT_EQ(scheduler.stats().running, 0);
  EXPECT_EQ(scheduler.stats().waiting, 0);
}

TEST(QuerySchedulerTest, ShutdownFailsWaitersAndLaterAdmitsWithCancelled) {
  QueryScheduler scheduler(/*max_concurrent=*/1, /*max_queued=*/8);
  auto held = scheduler.Admit();
  ASSERT_TRUE(held.ok());
  std::thread waiter([&]() {
    auto ticket = scheduler.Admit();
    ASSERT_FALSE(ticket.ok());
    EXPECT_EQ(ticket.status().code(), StatusCode::kCancelled);
  });
  while (scheduler.stats().waiting < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scheduler.Shutdown();
  waiter.join();
  auto late = scheduler.Admit();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kCancelled);
  // The running query keeps its ticket across shutdown.
  EXPECT_EQ(scheduler.stats().running, 1);
}

#ifndef _WIN32

// --- frame I/O deadlines ----------------------------------------------

TEST(FrameIoTest, SilentPeerTripsIdleAndMidFrameDeadlines) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdStream reader(fds[1]);

  // Idle deadline: no bytes at all.
  FrameIo io;
  io.idle_timeout_ms = 60;
  io.io_timeout_ms = 60;
  WallTimer timer;
  auto idle = ReadFrame(&reader, io);
  ASSERT_FALSE(idle.ok());
  EXPECT_EQ(idle.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(timer.ElapsedMillis(), 5000);

  // Mid-frame deadline: a torn length prefix then silence.
  const char partial[2] = {4, 0};
  ASSERT_EQ(::send(fds[0], partial, 2, 0), 2);
  auto torn = ReadFrame(&reader, io);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kDeadlineExceeded);

  ::close(fds[0]);
  ::close(fds[1]);
}

// --- datasets and oracles ---------------------------------------------

void WriteGroceries(const std::string& path, uint32_t txns,
                    uint64_t seed) {
  GroceriesParams params;
  params.num_transactions = txns;
  params.seed = seed;
  auto data = GenerateGroceries(params);
  ASSERT_TRUE(data.ok()) << data.status();
  Status written = storage::WriteStoreFile(
      path, data->db, data->dict, data->taxonomy,
      storage::StoreWriter::Options{});
  ASSERT_TRUE(written.ok()) << written;
}

/// A store whose low-minsup mine takes seconds — long enough that a
/// sub-second deadline reliably fires mid-count.
void WriteSlowQuest(const std::string& path) {
  ItemDictionary dict;
  TaxonomyGenParams tax_params;
  auto taxonomy = GenerateBalancedTaxonomy(tax_params, &dict);
  ASSERT_TRUE(taxonomy.ok()) << taxonomy.status();
  QuestParams params;
  params.num_transactions = 30000;
  auto db = GenerateQuest(params, *taxonomy);
  ASSERT_TRUE(db.ok()) << db.status();
  Status written = storage::WriteStoreFile(
      path, *db, dict, *taxonomy, storage::StoreWriter::Options{});
  ASSERT_TRUE(written.ok()) << written;
}

/// Mine options that push the quest store's run into multi-second
/// territory: near-floor supports make almost every pair a candidate.
std::vector<std::pair<std::string, std::string>> SlowQuestParams() {
  return {{"minsup", "0.00005,0.00003,0.00003"},
          {"gamma", "0.02"},
          {"epsilon", "0.005"},
          {"format", "csv"}};
}

std::string SoloBody(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& params) {
  auto reader = storage::StoreReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status();
  auto request = MineRequestFromParams(params);
  EXPECT_TRUE(request.ok()) << request.status();
  auto outcome =
      ExecuteMineRequest(reader->db(), reader->taxonomy(),
                         &reader->dict(), nullptr, *request, nullptr);
  EXPECT_TRUE(outcome.ok()) << outcome.status();
  return outcome->body;
}

Result<Response> MineOnce(
    const std::string& socket_path, const std::string& store,
    const std::vector<std::pair<std::string, std::string>>& params) {
  FLIPPER_ASSIGN_OR_RETURN(Client client,
                           Client::ConnectWithRetry(socket_path, 10000));
  Request request;
  request.verb = "mine";
  request.params.emplace_back("store", store);
  for (const auto& [key, value] : params) {
    request.params.emplace_back(key, value);
  }
  return client.Call(request);
}

// --- un-fired tokens are invisible ------------------------------------

TEST(CancellationTest, UnfiredTokenIsByteInvisible) {
  const std::string path = TempPath("cancel_identity.fdb");
  WriteGroceries(path, 800, 11);
  auto reader = storage::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto request = MineRequestFromParams({{"format", "csv"}});
  ASSERT_TRUE(request.ok()) << request.status();

  auto baseline =
      ExecuteMineRequest(reader->db(), reader->taxonomy(),
                         &reader->dict(), nullptr, *request, nullptr);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_GT(std::count(baseline->body.begin(), baseline->body.end(),
                       '\n'),
            1);

  // Same request with a live-but-unfired token (far-future deadline):
  // the cancel plumbing may not perturb a single byte.
  CancelToken token;
  token.SetDeadlineAfterMs(60 * 60 * 1000);
  MineRequest with_token = *request;
  with_token.cancel = &token;
  auto tokened =
      ExecuteMineRequest(reader->db(), reader->taxonomy(),
                         &reader->dict(), nullptr, with_token, nullptr);
  ASSERT_TRUE(tokened.ok()) << tokened.status();
  EXPECT_EQ(tokened->body, baseline->body);
  EXPECT_FALSE(token.Fired());
  std::remove(path.c_str());
}

// --- deadline firing mid-count ----------------------------------------

TEST(ServerRobustnessTest, DeadlineFiresMidCountWhileHealthyQueryMatches) {
  const std::string quest_path = TempPath("deadline_quest.fdb");
  const std::string groceries_path = TempPath("deadline_groceries.fdb");
  WriteSlowQuest(quest_path);
  WriteGroceries(groceries_path, 1200, 3);
  const std::vector<std::pair<std::string, std::string>> healthy_params =
      {{"format", "csv"}};
  const std::string healthy_oracle =
      SoloBody(groceries_path, healthy_params);
  ASSERT_GT(std::count(healthy_oracle.begin(), healthy_oracle.end(),
                       '\n'),
            1);

  ServerOptions options;
  options.socket_path = TempPath("deadline.sock");
  options.max_concurrent = 2;
  Server server(options);
  ASSERT_TRUE(server.AddStore("slow", quest_path).ok());
  ASSERT_TRUE(server.AddStore("g", groceries_path).ok());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kDeadlineMs = 1000;
  std::string deadline_error;
  int64_t deadline_elapsed_ms = 0;
  std::thread doomed([&]() {
    auto client = Client::ConnectWithRetry(options.socket_path, 10000);
    ASSERT_TRUE(client.ok()) << client.status();
    Request request;
    request.verb = "mine";
    request.params.emplace_back("store", "slow");
    for (const auto& [key, value] : SlowQuestParams()) {
      request.params.emplace_back(key, value);
    }
    request.params.emplace_back("deadline_ms",
                                std::to_string(kDeadlineMs));
    WallTimer timer;
    auto response = client->Call(request);
    deadline_elapsed_ms = timer.ElapsedMillis();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_FALSE(response->ok);
    deadline_error = response->error;
  });

  // While the doomed query burns its deadline, an unrelated query on
  // the other store completes and stays byte-identical to its oracle.
  auto healthy = MineOnce(options.socket_path, "g", healthy_params);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  ASSERT_TRUE(healthy->ok) << healthy->error;
  EXPECT_EQ(healthy->body, healthy_oracle);

  doomed.join();
  EXPECT_NE(deadline_error.find("deadline_exceeded"), std::string::npos)
      << deadline_error;
  // Cooperative cancellation is polled at segment/batch granularity:
  // the error must come back promptly, not after the full multi-second
  // mine. Sanitizer instrumentation slows each poll interval by an
  // order of magnitude (and this box may be single-core), so those
  // builds get proportional slack; the uninstrumented bound is the
  // contract.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr int kUnwindSlack = 8;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  constexpr int kUnwindSlack = 8;
#else
  constexpr int kUnwindSlack = 2;
#endif
#else
  constexpr int kUnwindSlack = 2;
#endif
  EXPECT_LE(deadline_elapsed_ms, kUnwindSlack * kDeadlineMs)
      << "deadline took " << deadline_elapsed_ms << " ms to fire";

  EXPECT_GE(server.metrics().counter("queries.deadline_exceeded"), 1);
  EXPECT_EQ(server.metrics().counter("queries.failed"), 0);

  server.Stop();
  std::remove(quest_path.c_str());
  std::remove(groceries_path.c_str());
}

// --- disconnect mid-mine ----------------------------------------------

TEST(ServerRobustnessTest, DisconnectMidMineFreesTheSchedulerSlot) {
  const std::string quest_path = TempPath("disconnect_quest.fdb");
  const std::string groceries_path = TempPath("disconnect_groceries.fdb");
  WriteSlowQuest(quest_path);
  WriteGroceries(groceries_path, 800, 5);
  const std::vector<std::pair<std::string, std::string>> healthy_params =
      {{"format", "csv"}};
  const std::string healthy_oracle =
      SoloBody(groceries_path, healthy_params);

  ServerOptions options;
  options.socket_path = TempPath("disconnect.sock");
  // One slot: the follow-up query can only run if the abandoned one
  // actually releases it.
  options.max_concurrent = 1;
  Server server(options);
  ASSERT_TRUE(server.AddStore("slow", quest_path).ok());
  ASSERT_TRUE(server.AddStore("g", groceries_path).ok());
  ASSERT_TRUE(server.Start().ok());

  // Fire the slow query and hang up mid-mine without reading a byte of
  // the response.
  {
    auto ready = Client::ConnectWithRetry(options.socket_path, 10000);
    ASSERT_TRUE(ready.ok()) << ready.status();
  }
  auto fd = Client::ConnectRawFd(options.socket_path);
  ASSERT_TRUE(fd.ok()) << fd.status();
  Request request;
  request.verb = "mine";
  request.params.emplace_back("store", "slow");
  for (const auto& [key, value] : SlowQuestParams()) {
    request.params.emplace_back(key, value);
  }
  ASSERT_TRUE(WriteFrame(*fd, EncodeRequest(request)).ok());
  // Give the daemon time to admit and start mining, then vanish.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ::close(*fd);

  // The abandoned slot must free well before the slow mine would have
  // finished; the healthy query then runs and byte-matches its oracle.
  WallTimer timer;
  auto healthy = MineOnce(options.socket_path, "g", healthy_params);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  ASSERT_TRUE(healthy->ok) << healthy->error;
  EXPECT_EQ(healthy->body, healthy_oracle);

  // Slot accounting: nothing still running or queued, and the daemon
  // recorded the abandonment.
  for (int i = 0; i < 100; ++i) {
    if (server.metrics().counter("queries.disconnected") >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.metrics().counter("queries.disconnected"), 1);
  EXPECT_EQ(server.metrics().counter("queries.failed"), 0);

  auto stats_client =
      Client::ConnectWithRetry(options.socket_path, 10000);
  ASSERT_TRUE(stats_client.ok()) << stats_client.status();
  Request stats_request;
  stats_request.verb = "stats";
  auto stats = stats_client->Call(stats_request);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_TRUE(stats->ok) << stats->error;
  EXPECT_EQ(server.metrics().gauge("scheduler.running"), 0.0);
  EXPECT_EQ(server.metrics().gauge("scheduler.waiting"), 0.0);

  server.Stop();
  std::remove(quest_path.c_str());
  std::remove(groceries_path.c_str());
}

// --- chaos sweep ------------------------------------------------------

TEST(ServerRobustnessTest, ChaosSweepLeavesTheDaemonServingAndLeakFree) {
  const std::string store_path = TempPath("chaos.fdb");
  WriteGroceries(store_path, 400, 9);
  const std::vector<std::pair<std::string, std::string>> params = {
      {"format", "csv"}};
  const std::string oracle = SoloBody(store_path, params);

  ServerOptions options;
  options.socket_path = TempPath("chaos.sock");
  options.max_concurrent = 2;
  // Chaos streams that stall must trip the daemon's I/O deadline, not
  // pin a connection thread for the default 30 s.
  options.io_timeout_ms = 500;
  Server server(options);
  ASSERT_TRUE(server.AddStore("d", store_path).ok());
  ASSERT_TRUE(server.Start().ok());
  {
    auto ready = Client::ConnectWithRetry(options.socket_path, 10000);
    ASSERT_TRUE(ready.ok()) << ready.status();
  }

  Request request;
  request.verb = "mine";
  request.params.emplace_back("store", "d");
  for (const auto& [key, value] : params) {
    request.params.emplace_back(key, value);
  }
  const std::string payload = EncodeRequest(request);
  const uint64_t frame_bytes = payload.size() + 4;

  // >= 200 fault plans over both directions: kills and stalls at every
  // byte region — mid-prefix, mid-payload, mid-response.
  constexpr int kRounds = 220;
  Rng rng(0xc4a05);
  int killed = 0;
  for (int round = 0; round < kRounds; ++round) {
    auto fd = Client::ConnectRawFd(options.socket_path);
    ASSERT_TRUE(fd.ok()) << "round " << round << ": " << fd.status();
    StreamFaultPlan plan;
    switch (rng.Below(4)) {
      case 0:
        plan.kill_after_write_bytes = rng.Below(frame_bytes + 1);
        break;
      case 1:
        plan.kill_after_read_bytes = rng.Below(64);
        break;
      case 2:
        plan.stall_before_write_byte = rng.Below(frame_bytes + 1);
        plan.stall_ms = 5 + static_cast<int>(rng.Below(20));
        break;
      default:
        plan.stall_before_read_byte = rng.Below(64);
        plan.stall_ms = 5 + static_cast<int>(rng.Below(20));
        break;
    }
    FaultInjectingStream stream(*fd, plan);
    FrameIo io;
    io.idle_timeout_ms = 5000;
    io.io_timeout_ms = 5000;
    if (WriteFrame(&stream, payload, io).ok()) {
      (void)ReadFrame(&stream, io);
    }
    if (stream.killed()) ++killed;
    ::close(*fd);
  }
  // The deterministic plan mix must actually exercise the kill paths.
  EXPECT_GT(killed, 50);

  // The daemon still serves, byte-identically.
  auto after = MineOnce(options.socket_path, "d", params);
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_TRUE(after->ok) << after->error;
  EXPECT_EQ(after->body, oracle);

  // Zero leaks: every accepted connection was closed (poll until the
  // last torn connections finish their teardown), and no scheduler
  // slot or waiter is stuck.
  int64_t opened = 0;
  int64_t closed = 0;
  for (int i = 0; i < 500; ++i) {
    opened = server.metrics().counter("connections.opened");
    closed = server.metrics().counter("connections.closed");
    if (opened > 0 && opened == closed + 1) break;  // +1: MineOnce's
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(opened, kRounds);
  // The `after` client's connection may still be live; all torn chaos
  // connections must be fully closed.
  EXPECT_LE(opened - closed, 1) << opened << " opened, " << closed
                                << " closed";
  Request stats_request;
  stats_request.verb = "stats";
  auto stats_client =
      Client::ConnectWithRetry(options.socket_path, 10000);
  ASSERT_TRUE(stats_client.ok()) << stats_client.status();
  auto stats = stats_client->Call(stats_request);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_TRUE(stats->ok) << stats->error;
  EXPECT_EQ(server.metrics().gauge("scheduler.running"), 0.0);
  EXPECT_EQ(server.metrics().gauge("scheduler.waiting"), 0.0);

  server.Stop();
  std::remove(store_path.c_str());
}

// --- ping schema / uptime ---------------------------------------------

TEST(ServerRobustnessTest, PingCarriesSchemaVersionAndUptime) {
  const std::string store_path = TempPath("ping.fdb");
  WriteGroceries(store_path, 200, 7);
  ServerOptions options;
  options.socket_path = TempPath("ping.sock");
  Server server(options);
  ASSERT_TRUE(server.AddStore("d", store_path).ok());
  ASSERT_TRUE(server.Start().ok());

  // ConnectWithRetry itself asserts the schema; also check the raw
  // meta values.
  auto client = Client::ConnectWithRetry(options.socket_path, 10000);
  ASSERT_TRUE(client.ok()) << client.status();
  Request ping;
  ping.verb = "ping";
  auto pong = client->Call(ping);
  ASSERT_TRUE(pong.ok()) << pong.status();
  ASSERT_TRUE(pong->ok);
  EXPECT_EQ(pong->Meta("schema"),
            std::to_string(kProtocolSchemaVersion));
  EXPECT_FALSE(pong->Meta("uptime_s").empty());

  server.Stop();
  std::remove(store_path.c_str());
}

// --- graceful drain ---------------------------------------------------

TEST(ServerRobustnessTest, StopCancelsInFlightQueriesWithinTheGrace) {
  const std::string quest_path = TempPath("drain_quest.fdb");
  WriteSlowQuest(quest_path);
  ServerOptions options;
  options.socket_path = TempPath("drain.sock");
  options.drain_grace_ms = 150;
  Server server(options);
  ASSERT_TRUE(server.AddStore("slow", quest_path).ok());
  ASSERT_TRUE(server.Start().ok());
  {
    auto ready = Client::ConnectWithRetry(options.socket_path, 10000);
    ASSERT_TRUE(ready.ok()) << ready.status();
  }

  // A slow query in flight when Stop() lands must be cancelled by the
  // drain token once the grace lapses — Stop may not hang for the
  // mine's full runtime.
  std::thread victim([&]() {
    auto client = Client::ConnectWithRetry(options.socket_path, 10000);
    ASSERT_TRUE(client.ok()) << client.status();
    Request request;
    request.verb = "mine";
    request.params.emplace_back("store", "slow");
    for (const auto& [key, value] : SlowQuestParams()) {
      request.params.emplace_back(key, value);
    }
    // The daemon may or may not get the error frame out before the
    // socket is torn down; both are acceptable outcomes here.
    (void)client->Call(request);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  WallTimer timer;
  server.Stop();
  EXPECT_LT(timer.ElapsedMillis(), 3000);
  victim.join();
  std::remove(quest_path.c_str());
}

#endif  // !_WIN32

}  // namespace
}  // namespace service
}  // namespace flipper
