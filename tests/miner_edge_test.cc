// Edge cases and failure injection for both mining engines: degenerate
// inputs, resource guards, measure variations, truncated-taxonomy
// queries and config misuse.

#include <gtest/gtest.h>

#include "core/flipper_miner.h"
#include "core/naive_miner.h"
#include "test_util.h"

namespace flipper {
namespace {

using testutil::Dataset;
using testutil::PaperToyDataset;
using testutil::RandomDataset;

MiningConfig LooseConfig(int height) {
  MiningConfig config;
  config.gamma = 0.6;
  config.epsilon = 0.35;
  config.min_support.assign(static_cast<size_t>(height), 0.01);
  return config;
}

TEST(MinerEdge, EmptyDatabase) {
  Dataset data = PaperToyDataset();
  TransactionDb empty;
  MiningConfig config = LooseConfig(3);
  auto flip = FlipperMiner::Run(empty, data.taxonomy, config);
  ASSERT_TRUE(flip.ok()) << flip.status();
  EXPECT_TRUE(flip->patterns.empty());
  auto naive = NaiveMiner::Run(empty, data.taxonomy, config);
  ASSERT_TRUE(naive.ok());
  EXPECT_TRUE(naive->patterns.empty());
}

TEST(MinerEdge, SingleLevelTaxonomyHasNoFlips) {
  TaxonomyBuilder builder;
  builder.AddRoot(0);
  builder.AddRoot(1);
  builder.AddRoot(2);
  auto tax = builder.Build();
  ASSERT_TRUE(tax.ok());
  TransactionDb db;
  for (int i = 0; i < 50; ++i) db.Add({0, 1});
  for (int i = 0; i < 50; ++i) db.Add({2});

  MiningConfig config = LooseConfig(1);
  auto flip = FlipperMiner::Run(db, *tax, config);
  ASSERT_TRUE(flip.ok()) << flip.status();
  EXPECT_TRUE(flip->patterns.empty());
  auto naive = NaiveMiner::Run(db, *tax, config);
  ASSERT_TRUE(naive.ok());
  EXPECT_TRUE(naive->patterns.empty());
}

TEST(MinerEdge, InvalidConfigRejected) {
  Dataset data = PaperToyDataset();
  MiningConfig config = LooseConfig(3);
  config.gamma = 0.2;
  config.epsilon = 0.3;  // gamma <= epsilon
  EXPECT_FALSE(FlipperMiner::Run(data.db, data.taxonomy, config).ok());
  EXPECT_FALSE(NaiveMiner::Run(data.db, data.taxonomy, config).ok());
}

TEST(MinerEdge, CandidateGuardSurfacesResourceExhausted) {
  Dataset data = RandomDataset(5, /*num_roots=*/6, /*fanout=*/3,
                               /*depth=*/3, /*num_txns=*/400,
                               /*max_width=*/6);
  MiningConfig config;
  config.gamma = 0.5;
  config.epsilon = 0.2;
  config.min_support = {0.002, 0.002, 0.002};
  config.max_candidates_per_cell = 3;  // absurdly small
  auto result = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(MinerEdge, MaxItemsetSizeCapsColumns) {
  Dataset data = RandomDataset(9);
  MiningConfig config;
  config.gamma = 0.5;
  config.epsilon = 0.2;
  config.min_support = {0.01, 0.01, 0.01};
  config.max_itemset_size = 2;
  auto result = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const FlippingPattern& p : result->patterns) {
    EXPECT_LE(p.size(), 2);
  }
  for (const CellStats& cell : result->stats.cells) {
    EXPECT_LE(cell.k, 2);
  }
}

TEST(MinerEdge, AllFiveMeasuresAgreeWithOracle) {
  Dataset data = RandomDataset(31);
  MiningConfig config;
  config.gamma = 0.5;
  config.epsilon = 0.2;
  config.min_support = {0.03, 0.02, 0.01};
  for (MeasureKind measure : kAllMeasures) {
    config.measure = measure;
    auto naive = NaiveMiner::Run(data.db, data.taxonomy, config);
    ASSERT_TRUE(naive.ok()) << MeasureKindToString(measure);
    auto flip = FlipperMiner::Run(data.db, data.taxonomy, config);
    ASSERT_TRUE(flip.ok()) << MeasureKindToString(measure);
    EXPECT_TRUE(SamePatterns(naive->patterns, flip->patterns))
        << MeasureKindToString(measure);
  }
}

// Definition 2's note: level-subset queries run on a truncated
// taxonomy. Restricting the toy tree to levels {1, 3} merges the flip
// chain to two levels; {a11, b11} still flips (POS at level 1, the
// leaf pair is POS... so it must NOT flip) — verify against the
// oracle rather than assuming.
TEST(MinerEdge, TruncatedTaxonomyQuery) {
  Dataset data = PaperToyDataset();
  const int levels[] = {1, 3};
  auto truncated = data.taxonomy.RestrictToLevels(levels);
  ASSERT_TRUE(truncated.ok()) << truncated.status();

  MiningConfig config;
  config.gamma = 0.6;
  config.epsilon = 0.35;
  config.min_support = {0.1, 0.1};
  auto naive = NaiveMiner::Run(data.db, *truncated, config);
  ASSERT_TRUE(naive.ok());
  auto flip = FlipperMiner::Run(data.db, *truncated, config);
  ASSERT_TRUE(flip.ok());
  EXPECT_TRUE(SamePatterns(naive->patterns, flip->patterns));
  // {a11, b11} is POS at both retained levels -> not flipping in the
  // truncated view.
  for (const FlippingPattern& p : flip->patterns) {
    EXPECT_EQ(p.chain.size(), 2u);
    EXPECT_TRUE(p.IsValidFlip());
  }
}

TEST(MinerEdge, WideTransactionsUseScanDrivenPathCorrectly) {
  // Dense, wide transactions push cells into the scan-driven strategy;
  // results must match the oracle regardless.
  Dataset data = RandomDataset(77, /*num_roots=*/5, /*fanout=*/3,
                               /*depth=*/3, /*num_txns=*/500,
                               /*max_width=*/10);
  MiningConfig config;
  config.gamma = 0.45;
  config.epsilon = 0.2;
  config.min_support = {0.004, 0.002, 0.002};
  auto naive = NaiveMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(naive.ok());
  auto flip = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(flip.ok());
  EXPECT_TRUE(SamePatterns(naive->patterns, flip->patterns));
}

TEST(MinerEdge, StatsAreCoherent) {
  Dataset data = PaperToyDataset();
  MiningConfig config = LooseConfig(3);
  config.min_support = {0.1, 0.1, 0.1};
  auto result = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(result.ok());
  const MiningStats& stats = result->stats;
  EXPECT_GT(stats.cells.size(), 0u);
  EXPECT_GT(stats.db_scans, 0u);
  EXPECT_GE(stats.total_generated, stats.total_counted);
  EXPECT_GT(stats.peak_candidate_bytes, 0);
  uint64_t counted = 0;
  for (const CellStats& cell : stats.cells) {
    EXPECT_GE(cell.generated, 0u);
    EXPECT_GE(cell.frequent, cell.labeled);
    EXPECT_GE(cell.labeled, cell.alive);
    counted += cell.counted;
  }
  EXPECT_EQ(counted, stats.total_counted);
  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("db scans"), std::string::npos);
}

TEST(MinerEdge, RerunIsDeterministic) {
  Dataset data = RandomDataset(55);
  MiningConfig config;
  config.gamma = 0.5;
  config.epsilon = 0.25;
  config.min_support = {0.02, 0.01, 0.01};
  auto a = FlipperMiner::Run(data.db, data.taxonomy, config);
  auto b = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(SamePatterns(a->patterns, b->patterns));
  EXPECT_EQ(a->stats.total_counted, b->stats.total_counted);
}

}  // namespace
}  // namespace flipper
