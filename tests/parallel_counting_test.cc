// Parallel-vs-serial equivalence: the sharded counting engine must
// produce bit-identical supports and identical mining output for every
// thread count, both counter kinds, and the parallelized view
// materialization paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/flipper_miner.h"
#include "core/naive_miner.h"
#include "core/support_counting.h"
#include "data/vertical_index.h"
#include "test_util.h"

namespace flipper {
namespace {

std::string Fingerprint(const MiningResult& result) {
  std::string out;
  for (const FlippingPattern& p : result.patterns) {
    out += p.ToString() + "\n";
  }
  return out;
}

/// Thread counts the equivalence suites sweep: serial, 2, 4, and
/// whatever the hardware reports (0 resolves to it).
const int kThreadCounts[] = {1, 2, 4, 0};

TEST(ParallelCounting, TrieScanMatchesSerialAndBruteForce) {
  Rng rng(12345);
  for (int trial = 0; trial < 5; ++trial) {
    TransactionDb db;
    std::vector<ItemId> txn;
    const ItemId alphabet = 30;
    // Enough transactions that the scan actually shards (>= 512/shard).
    for (int t = 0; t < 4096; ++t) {
      txn.clear();
      const int width = 1 + static_cast<int>(rng.Below(9));
      for (int i = 0; i < width; ++i) {
        txn.push_back(static_cast<ItemId>(rng.Below(alphabet)));
      }
      db.Add(txn);
    }
    const int k = 2 + static_cast<int>(rng.Below(3));
    std::vector<Itemset> candidates;
    std::unordered_set<Itemset, ItemsetHash> seen;
    for (int c = 0; c < 80; ++c) {
      Itemset s;
      while (s.size() < k) {
        s.Insert(static_cast<ItemId>(rng.Below(alphabet)));
      }
      if (seen.insert(s).second) candidates.push_back(s);
    }

    std::vector<uint32_t> serial(candidates.size(), 0);
    CountBatchWithTrie(db, candidates, nullptr, serial);
    for (size_t i = 0; i < candidates.size(); ++i) {
      ASSERT_EQ(serial[i], db.CountSupport(candidates[i]));
    }
    for (int threads : kThreadCounts) {
      ThreadPool pool(threads);
      std::vector<uint32_t> parallel(candidates.size(), 0);
      CountBatchWithTrie(db, candidates, &pool, parallel);
      EXPECT_EQ(parallel, serial)
          << "trial " << trial << ", threads " << pool.num_threads();
    }
  }
}

TEST(ParallelCounting, GeneralizeMatchesSerial) {
  Rng rng(99);
  TransactionDb db;
  std::vector<ItemId> txn;
  const ItemId alphabet = 50;
  for (int t = 0; t < 5000; ++t) {
    txn.clear();
    const int width = 1 + static_cast<int>(rng.Below(7));
    for (int i = 0; i < width; ++i) {
      txn.push_back(static_cast<ItemId>(rng.Below(alphabet)));
    }
    db.Add(txn);
  }
  // A random many-to-one map with some dropped items.
  std::vector<ItemId> lut(alphabet);
  for (ItemId i = 0; i < alphabet; ++i) {
    lut[i] = rng.Bernoulli(0.1) ? kInvalidItem
                                : static_cast<ItemId>(rng.Below(12));
  }

  const TransactionDb serial = db.Generalize(lut);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    const TransactionDb parallel = db.Generalize(lut, &pool);
    ASSERT_EQ(parallel.size(), serial.size());
    EXPECT_EQ(parallel.alphabet_size(), serial.alphabet_size());
    EXPECT_EQ(parallel.max_width(), serial.max_width());
    EXPECT_EQ(parallel.total_items(), serial.total_items());
    for (TxnId t = 0; t < serial.size(); ++t) {
      const auto a = serial.Get(t);
      const auto b = parallel.Get(t);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "txn " << t << ", threads " << pool.num_threads();
    }
  }
}

TEST(ParallelCounting, VerticalIndexBuildMatchesSerial) {
  Rng rng(4242);
  TransactionDb db;
  std::vector<ItemId> txn;
  const ItemId alphabet = 40;
  for (int t = 0; t < 5000; ++t) {
    txn.clear();
    const int width = 1 + static_cast<int>(rng.Below(6));
    for (int i = 0; i < width; ++i) {
      txn.push_back(static_cast<ItemId>(rng.Below(alphabet)));
    }
    db.Add(txn);
  }
  const VerticalIndex serial(db);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    const VerticalIndex parallel(db, &pool);
    ASSERT_EQ(parallel.alphabet_size(), serial.alphabet_size());
    EXPECT_EQ(parallel.universe(), serial.universe());
    for (ItemId i = 0; i < serial.alphabet_size(); ++i) {
      EXPECT_EQ(parallel.Get(i).mode(), serial.Get(i).mode());
      EXPECT_EQ(parallel.Get(i).ToVector(), serial.Get(i).ToVector())
          << "item " << i << ", threads " << pool.num_threads();
    }
  }
}

TEST(ParallelCounting, VerticalCounterShardedMatchesSerial) {
  // Wide-alphabet dataset so one batch exceeds the vertical engine's
  // 64-candidates-per-shard floor and the sharded path really runs.
  testutil::Dataset data = testutil::RandomDataset(
      31, /*num_roots=*/8, /*fanout=*/3, /*depth=*/3,
      /*num_txns=*/3000, /*max_width=*/8);
  const int h = data.taxonomy.height();
  std::vector<ItemId> items = data.taxonomy.NodesAtLevel(h);
  ASSERT_GE(items.size(), 20u);
  std::vector<Itemset> candidates;
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = i + 1; j < 20; ++j) {
      candidates.push_back(Itemset::Pair(items[i], items[j]));
    }
  }
  ASSERT_GE(candidates.size(), 128u);  // >= 2 shards per pool thread

  auto serial_views = LevelViews::Build(data.db, data.taxonomy);
  ASSERT_TRUE(serial_views.ok());
  std::vector<uint32_t> serial;
  ASSERT_TRUE(MakeCounter(CounterKind::kVertical)
                  ->Count(&*serial_views, h, candidates, &serial)
                  .ok());
  // Sanity: the batch is not trivially all-zero.
  EXPECT_NE(*std::max_element(serial.begin(), serial.end()), 0u);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    auto views = LevelViews::Build(data.db, data.taxonomy, &pool);
    ASSERT_TRUE(views.ok());
    std::vector<uint32_t> parallel;
    ASSERT_TRUE(MakeCounter(CounterKind::kVertical, &pool)
                    ->Count(&*views, h, candidates, &parallel)
                    .ok());
    EXPECT_EQ(parallel, serial) << "threads " << pool.num_threads();
  }
}

struct MinerCase {
  uint64_t seed;
  CounterKind counter;
};

class MinerEquivalence : public ::testing::TestWithParam<MinerCase> {};

TEST_P(MinerEquivalence, SameSupportsAndPatternsForAnyThreadCount) {
  const MinerCase param = GetParam();
  // Large enough to shard (>= 512 txns/shard at 4 threads).
  testutil::Dataset data = testutil::RandomDataset(
      param.seed, /*num_roots=*/4, /*fanout=*/2, /*depth=*/3,
      /*num_txns=*/3000, /*max_width=*/6);

  MiningConfig config;
  config.gamma = 0.4;
  config.epsilon = 0.2;
  config.min_support = {0.05, 0.02, 0.01};
  config.counter = param.counter;

  config.num_threads = 1;
  auto serial = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(serial.ok()) << serial.status();
  const std::string serial_fp = Fingerprint(*serial);

  auto serial_naive = NaiveMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(serial_naive.ok()) << serial_naive.status();
  const std::string serial_naive_fp = Fingerprint(*serial_naive);

  for (int threads : kThreadCounts) {
    config.num_threads = threads;
    auto parallel = FlipperMiner::Run(data.db, data.taxonomy, config);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(Fingerprint(*parallel), serial_fp)
        << "flipper threads=" << threads;
    EXPECT_EQ(parallel->patterns.size(), serial->patterns.size());

    auto naive = NaiveMiner::Run(data.db, data.taxonomy, config);
    ASSERT_TRUE(naive.ok()) << naive.status();
    EXPECT_EQ(Fingerprint(*naive), serial_naive_fp)
        << "naive threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCounters, MinerEquivalence,
    ::testing::Values(MinerCase{7, CounterKind::kHorizontal},
                      MinerCase{7, CounterKind::kVertical},
                      MinerCase{21, CounterKind::kHorizontal},
                      MinerCase{21, CounterKind::kVertical},
                      MinerCase{77, CounterKind::kHorizontal},
                      MinerCase{77, CounterKind::kVertical}));

}  // namespace
}  // namespace flipper
