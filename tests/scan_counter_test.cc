// ScanCounterTable: the open-addressed bump-arena counter behind the
// scan-driven cell. Differential against unordered_map on random
// workloads, insertion-order iteration, key round trips, growth
// accounting — and the zero-allocation contract: a warm table
// (Reset() after a first pass) recounting a same-shaped workload
// performs no allocation at all, observable as zero new grow events.

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/scan_counter.h"
#include "data/itemset.h"

namespace flipper {
namespace {

Itemset RandomCombo(Rng* rng, int k, ItemId alphabet) {
  Itemset s;
  while (s.size() < k) {
    s.Insert(static_cast<ItemId>(rng->Below(alphabet)));
  }
  return s;
}

TEST(ScanCounterTable, MatchesUnorderedMapOnRandomWorkloads) {
  for (const uint64_t seed : {1u, 7u, 42u}) {
    Rng rng(seed);
    const int k = 2 + static_cast<int>(seed % 3);
    ScanCounterTable table;
    table.Reset(k);
    std::unordered_map<Itemset, uint32_t, ItemsetHash> expected;
    for (int i = 0; i < 20'000; ++i) {
      // A small alphabet forces heavy repeat increments, a larger one
      // forces growth past the initial slot count.
      const ItemId alphabet = i % 2 == 0 ? 12 : 200;
      const Itemset combo = RandomCombo(&rng, k, alphabet);
      table.Increment(combo);
      ++expected[combo];
    }
    ASSERT_EQ(table.size(), expected.size()) << "seed " << seed;
    for (const ScanCounterTable::Entry& entry : table.entries()) {
      const Itemset key = table.ItemsetOf(entry);
      const auto it = expected.find(key);
      ASSERT_NE(it, expected.end()) << key.ToString();
      EXPECT_EQ(entry.count, it->second) << key.ToString();
      // KeyOf exposes the same arena bytes ItemsetOf copies out.
      const auto raw = table.KeyOf(entry);
      ASSERT_EQ(static_cast<int>(raw.size()), k);
      for (int i = 0; i < k; ++i) EXPECT_EQ(raw[i], key[i]);
    }
  }
}

TEST(ScanCounterTable, EntriesKeepInsertionOrder) {
  ScanCounterTable table;
  table.Reset(2);
  const Itemset a{1, 2};
  const Itemset b{1, 3};
  const Itemset c{0, 9};
  for (const Itemset* s : {&a, &b, &c, &b, &a, &a}) {
    table.Increment(*s);
  }
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table.ItemsetOf(table.entries()[0]), a);
  EXPECT_EQ(table.ItemsetOf(table.entries()[1]), b);
  EXPECT_EQ(table.ItemsetOf(table.entries()[2]), c);
  EXPECT_EQ(table.entries()[0].count, 3u);
  EXPECT_EQ(table.entries()[1].count, 2u);
  EXPECT_EQ(table.entries()[2].count, 1u);
}

TEST(ScanCounterTable, RawKeyIncrementMatchesItemsetIncrement) {
  // The merge path bumps by arena key + explicit delta.
  ScanCounterTable src;
  src.Reset(3);
  Rng rng(99);
  for (int i = 0; i < 5'000; ++i) {
    src.Increment(RandomCombo(&rng, 3, 50));
  }
  ScanCounterTable merged;
  merged.Reset(3);
  for (const ScanCounterTable::Entry& entry : src.entries()) {
    merged.Increment(src.KeyOf(entry).data(), entry.count);
  }
  ASSERT_EQ(merged.size(), src.size());
  for (const ScanCounterTable::Entry& entry : src.entries()) {
    const Itemset key = src.ItemsetOf(entry);
    bool found = false;
    for (const ScanCounterTable::Entry& m : merged.entries()) {
      if (merged.ItemsetOf(m) == key) {
        EXPECT_EQ(m.count, entry.count) << key.ToString();
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << key.ToString();
  }
}

TEST(ScanCounterTable, WarmResetRecountsWithoutAllocating) {
  // First pass sizes the slots, entry list and key arena; Reset keeps
  // all three, so recounting the same workload — or any workload with
  // no more distinct keys — must allocate nothing. grow_events counts
  // every allocation the table performs after its first Reset, so the
  // warm passes must leave it untouched.
  const auto count_pass = [](ScanCounterTable* table, uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < 30'000; ++i) {
      table->Increment(RandomCombo(&rng, 3, 64));
    }
  };
  ScanCounterTable table;
  table.Reset(3);
  count_pass(&table, 5);
  const size_t distinct = table.size();
  EXPECT_GT(table.grow_events(), 0u)
      << "cold pass never grew: workload too small to prove anything";
  EXPECT_GT(table.MemoryBytes(), 0);

  const uint64_t warm_baseline = table.grow_events();
  for (int pass = 0; pass < 3; ++pass) {
    table.Reset(3);
    EXPECT_EQ(table.size(), 0u);
    count_pass(&table, 5);
    EXPECT_EQ(table.size(), distinct);
    EXPECT_EQ(table.grow_events(), warm_baseline)
        << "warm pass " << pass << " allocated";
  }
}

TEST(ScanCounterTable, ResetSwitchesArityAndReusesStorage) {
  ScanCounterTable table;
  Rng rng(11);
  table.Reset(4);
  for (int i = 0; i < 10'000; ++i) {
    table.Increment(RandomCombo(&rng, 4, 40));
  }
  const uint64_t grown = table.grow_events();
  // Smaller keys into the same arena: no growth possible unless the
  // distinct-key count exceeds the k=4 pass's.
  table.Reset(2);
  std::unordered_map<Itemset, uint32_t, ItemsetHash> expected;
  for (int i = 0; i < 5'000; ++i) {
    const Itemset combo = RandomCombo(&rng, 2, 30);
    table.Increment(combo);
    ++expected[combo];
  }
  EXPECT_EQ(table.grow_events(), grown);
  ASSERT_EQ(table.size(), expected.size());
  for (const ScanCounterTable::Entry& entry : table.entries()) {
    EXPECT_EQ(entry.count, expected.at(table.ItemsetOf(entry)));
  }
}

}  // namespace
}  // namespace flipper
