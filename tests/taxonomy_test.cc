// Taxonomy construction, validation, level semantics (including the
// Figure-3[B] shallow-leaf self-copies), level restriction
// (Figure-3[A] / truncated queries) and text I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "data/item_dictionary.h"
#include "taxonomy/taxonomy.h"
#include "taxonomy/taxonomy_builder.h"
#include "taxonomy/taxonomy_io.h"
#include "test_util.h"

namespace flipper {
namespace {

TEST(TaxonomyBuilder, BuildsPaperToyTree) {
  testutil::Dataset data = testutil::PaperToyDataset();
  const Taxonomy& tax = data.taxonomy;
  EXPECT_EQ(tax.height(), 3);
  EXPECT_TRUE(tax.Validate().ok());

  const ItemId a = *data.dict.Find("a");
  const ItemId a1 = *data.dict.Find("a1");
  const ItemId a11 = *data.dict.Find("a11");
  EXPECT_EQ(tax.LevelOf(a), 1);
  EXPECT_EQ(tax.LevelOf(a1), 2);
  EXPECT_EQ(tax.LevelOf(a11), 3);
  EXPECT_EQ(tax.ParentOf(a11), a1);
  EXPECT_EQ(tax.ParentOf(a1), a);
  EXPECT_EQ(tax.ParentOf(a), kInvalidItem);
  EXPECT_EQ(tax.RootOf(a11), a);
  EXPECT_EQ(tax.AncestorAtLevel(a11, 1), a);
  EXPECT_EQ(tax.AncestorAtLevel(a11, 2), a1);
  EXPECT_EQ(tax.AncestorAtLevel(a11, 3), a11);
  EXPECT_TRUE(tax.IsLeaf(a11));
  EXPECT_FALSE(tax.IsLeaf(a1));
}

TEST(TaxonomyBuilder, RejectsTwoParents) {
  TaxonomyBuilder builder;
  builder.AddRoot(0);
  builder.AddRoot(1);
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  EXPECT_FALSE(builder.AddEdge(1, 2).ok());
}

TEST(TaxonomyBuilder, RejectsSelfEdge) {
  TaxonomyBuilder builder;
  EXPECT_FALSE(builder.AddEdge(3, 3).ok());
}

TEST(TaxonomyBuilder, RejectsCycleAndUnreachable) {
  TaxonomyBuilder builder;
  builder.AddRoot(0);
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 1).ok());
  auto result = builder.Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TaxonomyBuilder, RejectsRootThatIsAChild) {
  TaxonomyBuilder builder;
  builder.AddRoot(0);
  builder.AddRoot(2);
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  EXPECT_FALSE(builder.Build().ok());
}

TEST(TaxonomyBuilder, RejectsEmpty) {
  TaxonomyBuilder builder;
  EXPECT_FALSE(builder.Build().ok());
}

TEST(Taxonomy, ShallowLeafSelfCopies) {
  // Root r0 with a deep branch (c -> g) and root r1 that is itself a
  // leaf: r1 must represent itself at levels 2 and 3.
  TaxonomyBuilder builder;
  builder.AddRoot(0);  // r0
  builder.AddRoot(1);  // r1, shallow leaf
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  auto tax = builder.Build();
  ASSERT_TRUE(tax.ok()) << tax.status();
  EXPECT_EQ(tax->height(), 3);
  EXPECT_EQ(tax->AncestorAtLevel(1, 1), 1u);
  EXPECT_EQ(tax->AncestorAtLevel(1, 2), 1u);
  EXPECT_EQ(tax->AncestorAtLevel(1, 3), 1u);
  // Internal node 2 does not exist below its own level.
  EXPECT_EQ(tax->AncestorAtLevel(2, 3), kInvalidItem);
  // Level rosters include the self-copies.
  const auto& level2 = tax->NodesAtLevel(2);
  EXPECT_NE(std::find(level2.begin(), level2.end(), 1u), level2.end());
  const auto& level3 = tax->NodesAtLevel(3);
  EXPECT_NE(std::find(level3.begin(), level3.end(), 1u), level3.end());
}

TEST(Taxonomy, LevelMapMatchesAncestors) {
  testutil::Dataset data = testutil::PaperToyDataset();
  const Taxonomy& tax = data.taxonomy;
  for (int h = 1; h <= tax.height(); ++h) {
    const std::vector<ItemId> lut = tax.LevelMap(h);
    for (size_t id = 0; id < tax.id_space(); ++id) {
      const auto iid = static_cast<ItemId>(id);
      if (tax.IsNode(iid)) {
        EXPECT_EQ(lut[id], tax.AncestorAtLevel(iid, h));
      } else {
        EXPECT_EQ(lut[id], kInvalidItem);
      }
    }
  }
}

TEST(Taxonomy, RestrictToLevels) {
  testutil::Dataset data = testutil::PaperToyDataset();
  // Keep levels {1, 3}: drops a1/a2/b1/b2; leaves attach directly to
  // the roots (Figure-3[A] truncation).
  const int levels[] = {1, 3};
  auto restricted = data.taxonomy.RestrictToLevels(levels);
  ASSERT_TRUE(restricted.ok()) << restricted.status();
  EXPECT_EQ(restricted->height(), 2);
  const ItemId a = *data.dict.Find("a");
  const ItemId a11 = *data.dict.Find("a11");
  const ItemId a1 = *data.dict.Find("a1");
  EXPECT_EQ(restricted->ParentOf(a11), a);
  EXPECT_FALSE(restricted->IsNode(a1));
  EXPECT_TRUE(restricted->Validate().ok());
  EXPECT_EQ(restricted->Leaves().size(), 8u);
}

TEST(Taxonomy, RestrictToLevelsValidation) {
  testutil::Dataset data = testutil::PaperToyDataset();
  const int empty[] = {1};
  EXPECT_FALSE(
      data.taxonomy.RestrictToLevels(std::span<const int>(empty, 0)).ok());
  const int bad_order[] = {3, 1};
  EXPECT_FALSE(data.taxonomy.RestrictToLevels(bad_order).ok());
  const int out_of_range[] = {1, 9};
  EXPECT_FALSE(data.taxonomy.RestrictToLevels(out_of_range).ok());
  const int missing_leaf_level[] = {1, 2};
  EXPECT_FALSE(data.taxonomy.RestrictToLevels(missing_leaf_level).ok());
}

TEST(TaxonomyIo, RoundTrip) {
  testutil::Dataset data = testutil::PaperToyDataset();
  std::ostringstream oss;
  ASSERT_TRUE(WriteTaxonomyStream(data.taxonomy, data.dict, oss).ok());

  ItemDictionary dict2;
  std::istringstream iss(oss.str());
  auto reloaded = ReadTaxonomyStream(iss, &dict2);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->height(), data.taxonomy.height());
  EXPECT_EQ(reloaded->Leaves().size(), data.taxonomy.Leaves().size());
  EXPECT_EQ(reloaded->Level1().size(), data.taxonomy.Level1().size());
  EXPECT_TRUE(reloaded->Validate().ok());
}

TEST(TaxonomyIo, RejectsMalformedLines) {
  ItemDictionary dict;
  std::istringstream bad("root a\nedge a\n");
  EXPECT_FALSE(ReadTaxonomyStream(bad, &dict).ok());

  std::istringstream unknown("frob a b\n");
  EXPECT_FALSE(ReadTaxonomyStream(unknown, &dict).ok());
}

TEST(TaxonomyIo, CommentsAndBlanksSkipped) {
  ItemDictionary dict;
  std::istringstream in(
      "# taxonomy\n\nroot a\n  \nedge a b\n# done\n");
  auto tax = ReadTaxonomyStream(in, &dict);
  ASSERT_TRUE(tax.ok()) << tax.status();
  EXPECT_EQ(tax->height(), 2);
}

TEST(TaxonomyIo, MissingFile) {
  ItemDictionary dict;
  auto result = ReadTaxonomyFile("/nonexistent/tax.txt", &dict);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace flipper
