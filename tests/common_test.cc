// Foundation utilities: Status/Result, string helpers, RNG, memory
// tracker, table printer, CSV, env.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/memory_tracker.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace flipper {
namespace {

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::InvalidArgument("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: boom");
  std::ostringstream oss;
  oss << s;
  EXPECT_EQ(oss.str(), "InvalidArgument: boom");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::OutOfRange("not positive");
  return v;
}

Status UseMacros(int v, int* out) {
  FLIPPER_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::OK();
}

TEST(Result, ValueAndError) {
  auto good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 21);
  EXPECT_EQ(good.value_or(-1), 21);

  auto bad = ParsePositive(-3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.value_or(-1), -1);

  int out = 0;
  EXPECT_TRUE(UseMacros(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseMacros(-5, &out).ok());
}

TEST(StringUtil, SplitAndTrim) {
  EXPECT_EQ(Split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  ").size(), 3u);
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(StartsWith("flipper", "flip"));
  EXPECT_TRUE(EndsWith("flipper", "per"));
  EXPECT_FALSE(StartsWith("a", "ab"));
}

TEST(StringUtil, StrictParsers) {
  EXPECT_EQ(*ParseInt(" 42 "), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_FALSE(ParseInt("42x").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999").ok());
  EXPECT_DOUBLE_EQ(*ParseDouble("0.5"), 0.5);
  EXPECT_FALSE(ParseDouble("0.5.1").ok());
}

TEST(StringUtil, Formatting) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(-42), "-42");
  EXPECT_EQ(FormatCount(0), "0");
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(c.Below(17), 17u);
    const int64_t v = c.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = c.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, PoissonMeanApproximatelyCorrect) {
  Rng rng(5);
  for (double mean : {0.5, 3.0, 40.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.Poisson(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.1 + 0.05) << "mean " << mean;
  }
}

TEST(Rng, ZipfIsMonotoneAndNormalized) {
  ZipfDistribution zipf(100, 1.0);
  double total = 0.0;
  double prev = 1.0;
  for (uint32_t r = 0; r < 100; ++r) {
    const double p = zipf.Pmf(r);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 100u);
}

TEST(MemoryTracker, LiveAndPeak) {
  MemoryTracker tracker;
  tracker.Add(100);
  tracker.Add(50);
  EXPECT_EQ(tracker.live_bytes(), 150);
  EXPECT_EQ(tracker.peak_bytes(), 150);
  tracker.Sub(120);
  EXPECT_EQ(tracker.live_bytes(), 30);
  EXPECT_EQ(tracker.peak_bytes(), 150);
  {
    ScopedTrackedBytes scope(&tracker, 500);
    EXPECT_EQ(tracker.live_bytes(), 530);
  }
  EXPECT_EQ(tracker.live_bytes(), 30);
  EXPECT_EQ(tracker.peak_bytes(), 530);
  tracker.Reset();
  EXPECT_EQ(tracker.peak_bytes(), 0);
}

TEST(MemoryTracker, RssReadable) {
  EXPECT_GT(CurrentRssBytes(), 0);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(Csv, EscapesFields) {
  CsvWriter csv({"a", "b"});
  csv.AddRow({"plain", "with,comma"});
  csv.AddRow({"with\"quote", "with\nnewline"});
  const std::string out = csv.ToString();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(LineScanner, YieldsEveryLineAcrossBlockBoundaries) {
  // A tiny block size forces refills mid-line; the long line also
  // exceeds the block and triggers the buffer-growth path.
  const std::string long_line(500, 'x');
  std::istringstream in("first\n\nsecond\r\n" + long_line +
                        "\nlast-no-newline");
  LineScanner scanner(in, /*block_bytes=*/1);  // clamped to 64
  std::vector<std::string> lines;
  std::string_view line;
  while (scanner.Next(&line)) lines.emplace_back(line);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0], "first");
  EXPECT_EQ(lines[1], "");
  EXPECT_EQ(lines[2], "second\r");
  EXPECT_EQ(lines[3], long_line);
  EXPECT_EQ(lines[4], "last-no-newline");
  EXPECT_FALSE(scanner.bad());
}

TEST(LineScanner, EmptyInput) {
  std::istringstream in("");
  LineScanner scanner(in);
  std::string_view line;
  EXPECT_FALSE(scanner.Next(&line));
  EXPECT_FALSE(scanner.bad());
}

TEST(ForEachWhitespaceToken, SplitsRuns) {
  std::vector<std::string> tokens;
  ForEachWhitespaceToken("  a\t bb  ccc \n", [&](std::string_view t) {
    tokens.emplace_back(t);
  });
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "bb");
  EXPECT_EQ(tokens[2], "ccc");
  ForEachWhitespaceToken("", [&](std::string_view) { FAIL(); });
  ForEachWhitespaceToken("   ", [&](std::string_view) { FAIL(); });
}

TEST(Env, FallbacksAndParsing) {
  ::unsetenv("FLIPPER_TEST_ENV");
  EXPECT_EQ(GetEnvInt("FLIPPER_TEST_ENV", 42), 42);
  ::setenv("FLIPPER_TEST_ENV", "17", 1);
  EXPECT_EQ(GetEnvInt("FLIPPER_TEST_ENV", 42), 17);
  ::setenv("FLIPPER_TEST_ENV", "junk", 1);
  EXPECT_EQ(GetEnvInt("FLIPPER_TEST_ENV", 42), 42);
  ::unsetenv("FLIPPER_TEST_ENV");
}

TEST(Timer, MeasuresElapsed) {
  WallTimer timer;
  double acc = 0.0;
  {
    ScopedTimer scoped(&acc);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  }
  EXPECT_GE(acc, 0.0);
  EXPECT_GE(timer.ElapsedSeconds(), acc);
  EXPECT_GE(timer.ElapsedMicros(), 0);
}

/// RAII guard: routes the log to `sink` and restores stderr on exit.
class ScopedLogSink {
 public:
  explicit ScopedLogSink(std::ostream* sink) { SetLogSink(sink); }
  ~ScopedLogSink() { SetLogSink(nullptr); }
};

TEST(Logging, LinesCarryIso8601TimestampAndThreadId) {
  std::ostringstream sink;
  ScopedLogSink guard(&sink);
  FLIPPER_LOG(Info) << "hello";
  const std::string line = sink.str();
  // "[YYYY-MM-DDTHH:MM:SS.mmmZ LEVEL T<id> file:line] message\n"
  ASSERT_GE(line.size(), 26u);
  EXPECT_EQ(line[0], '[');
  EXPECT_EQ(line[5], '-');
  EXPECT_EQ(line[8], '-');
  EXPECT_EQ(line[11], 'T');
  EXPECT_EQ(line[14], ':');
  EXPECT_EQ(line[17], ':');
  EXPECT_EQ(line[20], '.');
  EXPECT_EQ(line[24], 'Z');
  EXPECT_NE(line.find(" INFO T"), std::string::npos) << line;
  EXPECT_NE(line.find("common_test.cc:"), std::string::npos) << line;
  EXPECT_NE(line.find("] hello\n"), std::string::npos) << line;
}

// Four threads hammering one shared stringstream sink: every line must
// arrive whole (the sink receives exactly one formatted `<<` per
// message), with its own timestamp and thread id — no interleaved
// fragments, no lost lines.
TEST(Logging, ConcurrentWritersNeverInterleave) {
  std::ostringstream sink;
  ScopedLogSink guard(&sink);
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        FLIPPER_LOG(Info) << "writer=" << t << " line=" << i << " tail";
      }
    });
  }
  for (auto& th : threads) th.join();

  std::istringstream in(sink.str());
  std::string line;
  int count = 0;
  std::set<std::string> messages;
  std::set<std::string> tids;
  while (std::getline(in, line)) {
    ++count;
    // Structure: prefix with ISO-8601 timestamp, level, thread id.
    ASSERT_EQ(line[0], '[') << line;
    ASSERT_EQ(line[11], 'T') << line;
    ASSERT_EQ(line[24], 'Z') << line;
    const size_t tid_pos = line.find(" INFO T");
    ASSERT_NE(tid_pos, std::string::npos) << line;
    const size_t tid_end = line.find(' ', tid_pos + 7);
    ASSERT_NE(tid_end, std::string::npos) << line;
    tids.insert(line.substr(tid_pos + 6, tid_end - tid_pos - 6));
    // An intact message: exactly one "writer=" and the " tail" marker
    // at the very end — a torn or interleaved write would break this.
    const size_t msg_pos = line.find("writer=");
    ASSERT_NE(msg_pos, std::string::npos) << line;
    EXPECT_EQ(line.find("writer=", msg_pos + 1), std::string::npos)
        << line;
    ASSERT_GE(line.size(), 5u);
    EXPECT_EQ(line.substr(line.size() - 5), " tail") << line;
    messages.insert(line.substr(msg_pos));
  }
  EXPECT_EQ(count, kThreads * kLines);
  // Every (writer, line) message arrived exactly once...
  EXPECT_EQ(messages.size(),
            static_cast<size_t>(kThreads) * kLines);
  // ...and the four writers got four distinct thread ids.
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

}  // namespace
}  // namespace flipper
