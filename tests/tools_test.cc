// Tests for the CLI building blocks: the flag parser and the pattern
// exporters, plus the scan-cell strategy toggle and the flipper_cli
// command set driven end-to-end in-process (convert / inspect /
// datagen / mine --input).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "common/arg_parser.h"
#include "core/flipper_miner.h"
#include "core/pattern_io.h"
#include "data/db_io.h"
#include "taxonomy/taxonomy_io.h"
#include "test_util.h"

namespace flipper {
namespace {

TEST(ArgParser, FlagsSwitchesPositionals) {
  ArgParser args("prog", "test");
  args.AddFlag("gamma", "positive threshold", "FLOAT");
  args.AddFlag("name", "a string");
  args.AddSwitch("verbose", "noise");
  args.AddPositional("input", "input path");

  const char* argv[] = {"prog",          "--gamma=0.25", "data.basket",
                        "--name",        "hello world",  "--verbose"};
  ASSERT_TRUE(args.Parse(6, argv).ok());
  EXPECT_FALSE(args.help_requested());
  EXPECT_EQ(args.GetPositional("input"), "data.basket");
  EXPECT_DOUBLE_EQ(*args.GetDouble("gamma", 0.0), 0.25);
  EXPECT_EQ(args.GetString("name", ""), "hello world");
  EXPECT_TRUE(args.GetSwitch("verbose"));
  EXPECT_FALSE(args.GetSwitch("missing_switch_is_false"));
  EXPECT_EQ(*args.GetInt("missing", 7), 7);
}

TEST(ArgParser, Errors) {
  {
    ArgParser args("prog", "test");
    const char* argv[] = {"prog", "--unknown=1"};
    EXPECT_FALSE(args.Parse(2, argv).ok());
  }
  {
    ArgParser args("prog", "test");
    args.AddFlag("x", "x");
    const char* argv[] = {"prog", "--x"};  // value missing
    EXPECT_FALSE(args.Parse(2, argv).ok());
  }
  {
    ArgParser args("prog", "test");
    args.AddSwitch("v", "v");
    const char* argv[] = {"prog", "--v=yes"};  // switch with value
    EXPECT_FALSE(args.Parse(2, argv).ok());
  }
  {
    ArgParser args("prog", "test");
    args.AddPositional("input", "path");
    const char* argv[] = {"prog"};  // positional missing
    EXPECT_FALSE(args.Parse(1, argv).ok());
  }
  {
    ArgParser args("prog", "test");
    const char* argv[] = {"prog", "stray"};  // unexpected positional
    EXPECT_FALSE(args.Parse(2, argv).ok());
  }
  {
    ArgParser args("prog", "test");
    args.AddFlag("n", "an int", "INT");
    const char* argv[] = {"prog", "--n=abc"};
    ASSERT_TRUE(args.Parse(2, argv).ok());
    EXPECT_FALSE(args.GetInt("n", 0).ok());  // typed accessor fails
  }
}

TEST(ArgParser, HelpRequested) {
  ArgParser args("prog", "description text");
  args.AddFlag("gamma", "threshold", "FLOAT");
  args.AddPositional("input", "path");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(args.Parse(2, argv).ok());
  EXPECT_TRUE(args.help_requested());
  const std::string help = args.HelpText();
  EXPECT_NE(help.find("description text"), std::string::npos);
  EXPECT_NE(help.find("--gamma"), std::string::npos);
  EXPECT_NE(help.find("<input>"), std::string::npos);
}

std::vector<FlippingPattern> MineToy(ItemDictionary** dict_out,
                                     testutil::Dataset* data) {
  *data = testutil::PaperToyDataset();
  MiningConfig config;
  config.gamma = 0.6;
  config.epsilon = 0.35;
  config.min_support = {0.1, 0.1, 0.1};
  auto result = FlipperMiner::Run(data->db, data->taxonomy, config);
  EXPECT_TRUE(result.ok());
  *dict_out = &data->dict;
  return result->patterns;
}

TEST(PatternIo, CsvExport) {
  testutil::Dataset data;
  ItemDictionary* dict = nullptr;
  auto patterns = MineToy(&dict, &data);
  ASSERT_EQ(patterns.size(), 1u);

  std::ostringstream oss;
  ASSERT_TRUE(WritePatternsCsv(patterns, dict, oss).ok());
  const std::string csv = oss.str();
  // Header + 3 chain rows.
  EXPECT_NE(csv.find("pattern_id,level,itemset,support,corr,label"),
            std::string::npos);
  EXPECT_NE(csv.find("a11|b11"), std::string::npos);
  EXPECT_NE(csv.find("POS"), std::string::npos);
  EXPECT_NE(csv.find("NEG"), std::string::npos);
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')),
            4);
}

TEST(PatternIo, JsonExport) {
  testutil::Dataset data;
  ItemDictionary* dict = nullptr;
  auto patterns = MineToy(&dict, &data);

  std::ostringstream oss;
  ASSERT_TRUE(WritePatternsJson(patterns, dict, oss).ok());
  const std::string json = oss.str();
  EXPECT_NE(json.find("\"leaf\": [\"a11\", \"b11\"]"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"NEG\""), std::string::npos);
  EXPECT_NE(json.find("\"flip_gap\""), std::string::npos);
  // Balanced brackets (crude structural check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(PatternIo, JsonEscapesSpecialNames) {
  ItemDictionary dict;
  const ItemId weird = dict.Intern("item\"with\\quote");
  const ItemId plain = dict.Intern("plain");
  FlippingPattern p;
  p.leaf_itemset = Itemset::Pair(weird, plain);
  p.chain.push_back({1, p.leaf_itemset, 5, 0.9, Label::kPositive});
  std::ostringstream oss;
  ASSERT_TRUE(WritePatternsJson({p}, &dict, oss).ok());
  EXPECT_NE(oss.str().find("item\\\"with\\\\quote"), std::string::npos);
}

TEST(PatternIo, FileWriteFailsOnBadPath) {
  EXPECT_FALSE(
      WritePatternsCsvFile({}, nullptr, "/nonexistent/dir/p.csv").ok());
  EXPECT_FALSE(
      WritePatternsJsonFile({}, nullptr, "/nonexistent/dir/p.json").ok());
}

/// Drives RunFlipperCli as a subprocess would, capturing both streams.
int RunCli(const std::vector<std::string>& cli_args, std::string* out_text,
           std::string* err_text) {
  std::vector<const char*> argv;
  argv.push_back("flipper_cli");
  for (const std::string& arg : cli_args) argv.push_back(arg.c_str());
  std::ostringstream out;
  std::ostringstream err;
  const int rc = RunFlipperCli(static_cast<int>(argv.size()), argv.data(),
                               out, err);
  *out_text = out.str();
  *err_text = err.str();
  return rc;
}

class FlipperCliEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    testutil::Dataset data = testutil::PaperToyDataset();
    basket_ = ::testing::TempDir() + "cli_e2e.basket";
    taxonomy_ = ::testing::TempDir() + "cli_e2e.taxonomy";
    store_ = ::testing::TempDir() + "cli_e2e.fdb";
    ASSERT_TRUE(WriteTaxonomyFile(data.taxonomy, data.dict, taxonomy_).ok());
    ASSERT_TRUE(WriteBasketFile(data.db, data.dict, basket_).ok());
  }

  std::string basket_;
  std::string taxonomy_;
  std::string store_;
  std::string out_;
  std::string err_;
};

TEST_F(FlipperCliEndToEnd, ConvertInspectAndMineAreBitIdentical) {
  ASSERT_EQ(RunCli({"convert", basket_, taxonomy_, store_}, &out_, &err_),
            0)
      << err_;
  EXPECT_NE(out_.find("wrote " + store_), std::string::npos);

  ASSERT_EQ(RunCli({"inspect", store_}, &out_, &err_), 0) << err_;
  EXPECT_NE(out_.find("FlipperStore v2"), std::string::npos);
  EXPECT_NE(out_.find("checksums: OK"), std::string::npos);
  EXPECT_NE(out_.find("txn_items"), std::string::npos);
  EXPECT_NE(out_.find("catalog:"), std::string::npos);

  const std::vector<std::string> mining_flags = {
      "--gamma=0.6", "--epsilon=0.35", "--minsup=0.1,0.1,0.1",
      "--format=csv"};
  std::vector<std::string> from_text = {"mine", basket_, taxonomy_};
  from_text.insert(from_text.end(), mining_flags.begin(),
                   mining_flags.end());
  std::string text_csv;
  ASSERT_EQ(RunCli(from_text, &text_csv, &err_), 0) << err_;
  EXPECT_NE(text_csv.find("a11|b11"), std::string::npos);

  std::vector<std::string> from_store = {"mine", "--input", store_};
  from_store.insert(from_store.end(), mining_flags.begin(),
                    mining_flags.end());
  std::string store_csv;
  ASSERT_EQ(RunCli(from_store, &store_csv, &err_), 0) << err_;
  EXPECT_EQ(text_csv, store_csv);

  // Legacy spelling (no subcommand) still mines.
  std::vector<std::string> legacy = {basket_, taxonomy_};
  legacy.insert(legacy.end(), mining_flags.begin(), mining_flags.end());
  std::string legacy_csv;
  ASSERT_EQ(RunCli(legacy, &legacy_csv, &err_), 0) << err_;
  EXPECT_EQ(text_csv, legacy_csv);

  // Skipping toggle does not change the output.
  std::vector<std::string> no_skip = {"mine", "--input", store_,
                                      "--segment-skipping=off"};
  no_skip.insert(no_skip.end(), mining_flags.begin(),
                 mining_flags.end());
  std::string no_skip_csv;
  ASSERT_EQ(RunCli(no_skip, &no_skip_csv, &err_), 0) << err_;
  EXPECT_EQ(text_csv, no_skip_csv);
}

TEST_F(FlipperCliEndToEnd, ConvertStoreVersionsAndDowngrade) {
  // Explicit v1 conversion still writes a v1 store.
  const std::string v1_store = ::testing::TempDir() + "cli_e2e_v1.fdb";
  ASSERT_EQ(RunCli({"convert", basket_, taxonomy_, v1_store,
                    "--store-version=1"},
                   &out_, &err_),
            0)
      << err_;
  ASSERT_EQ(RunCli({"inspect", v1_store}, &out_, &err_), 0) << err_;
  EXPECT_NE(out_.find("FlipperStore v1"), std::string::npos);
  EXPECT_NE(out_.find("catalog: none"), std::string::npos);

  // Default conversion is v2; upgrade the v1 file and compare mining.
  ASSERT_EQ(RunCli({"convert", basket_, taxonomy_, store_}, &out_, &err_),
            0)
      << err_;
  const std::string upgraded = ::testing::TempDir() + "cli_e2e_up.fdb";
  ASSERT_EQ(RunCli({"convert", "--from-fdb", v1_store, upgraded},
                   &out_, &err_),
            0)
      << err_;
  EXPECT_NE(out_.find("v1 -> v2"), std::string::npos);

  const std::vector<std::string> mining_flags = {
      "--gamma=0.6", "--epsilon=0.35", "--minsup=0.1,0.1,0.1",
      "--format=csv"};
  const auto mine_store = [&](const std::string& path) {
    std::vector<std::string> cmd = {"mine", "--input", path};
    cmd.insert(cmd.end(), mining_flags.begin(), mining_flags.end());
    std::string csv;
    EXPECT_EQ(RunCli(cmd, &csv, &err_), 0) << err_;
    return csv;
  };
  const std::string v1_csv = mine_store(v1_store);
  EXPECT_FALSE(v1_csv.empty());
  EXPECT_EQ(v1_csv, mine_store(store_));
  EXPECT_EQ(v1_csv, mine_store(upgraded));

  // Downgrade back to v1; the upgraded and downgraded files mine the
  // same patterns.
  const std::string downgraded =
      ::testing::TempDir() + "cli_e2e_down.fdb";
  ASSERT_EQ(RunCli({"convert", "--from-fdb", upgraded, downgraded,
                    "--store-version=1"},
                   &out_, &err_),
            0)
      << err_;
  EXPECT_NE(out_.find("v2 -> v1"), std::string::npos);
  ASSERT_EQ(RunCli({"inspect", downgraded}, &out_, &err_), 0) << err_;
  EXPECT_NE(out_.find("FlipperStore v1"), std::string::npos);
  EXPECT_EQ(v1_csv, mine_store(downgraded));
}

TEST_F(FlipperCliEndToEnd, ConvertSameVersionIsAValidatedCopy) {
  ASSERT_EQ(RunCli({"convert", basket_, taxonomy_, store_}, &out_, &err_),
            0)
      << err_;
  std::ifstream original_file(store_, std::ios::binary);
  std::ostringstream original_bytes;
  original_bytes << original_file.rdbuf();

  const std::string copy = ::testing::TempDir() + "cli_e2e_copy.fdb";
  ASSERT_EQ(RunCli({"convert", "--from-fdb", store_, copy}, &out_, &err_),
            0)
      << err_;
  EXPECT_NE(out_.find("validated copy"), std::string::npos);
  EXPECT_NE(out_.find("already v2"), std::string::npos);

  std::ifstream copy_file(copy, std::ios::binary);
  std::ostringstream copy_bytes;
  copy_bytes << copy_file.rdbuf();
  EXPECT_EQ(original_bytes.str(), copy_bytes.str());

  // An explicit --segment-txns requests a re-shard, so the fast copy
  // is bypassed even at the same version.
  const std::string resharded =
      ::testing::TempDir() + "cli_e2e_reshard.fdb";
  ASSERT_EQ(RunCli({"convert", "--from-fdb", copy, resharded,
                    "--segment-txns=4"},
                   &out_, &err_),
            0)
      << err_;
  EXPECT_EQ(out_.find("validated copy"), std::string::npos);
  ASSERT_EQ(RunCli({"inspect", resharded}, &out_, &err_), 0) << err_;
  EXPECT_NE(out_.find("segments: 3"), std::string::npos);  // 10 txns / 4

  // An in-place re-encode would truncate the store while its mapping
  // is being read — it must be refused up front (through differing
  // spellings of the same path too), leaving the file intact.
  std::ifstream before_file(copy, std::ios::binary);
  std::ostringstream before_bytes;
  before_bytes << before_file.rdbuf();
  before_file.close();
  EXPECT_EQ(RunCli({"convert", "--from-fdb", copy, copy,
                    "--store-version=1"},
                   &out_, &err_),
            2);
  EXPECT_NE(err_.find("onto itself"), std::string::npos);
  const std::string alias =
      ::testing::TempDir() + "./cli_e2e_copy.fdb";  // same file
  EXPECT_EQ(RunCli({"convert", "--from-fdb", copy, alias,
                    "--segment-txns=4"},
                   &out_, &err_),
            2);
  std::ifstream after_file(copy, std::ios::binary);
  std::ostringstream after_bytes;
  after_bytes << after_file.rdbuf();
  EXPECT_EQ(before_bytes.str(), after_bytes.str());

  // A corrupt same-version input must fail the validated copy, not be
  // propagated.
  // 16 consecutive bytes cannot be all inter-section padding (at most
  // 7 pad bytes per boundary), so some checksummed payload is hit.
  std::string bytes = original_bytes.str();
  for (size_t i = 0; i < 16; ++i) bytes[bytes.size() / 2 + i] ^= 0x1;
  std::ofstream corrupt(store_, std::ios::binary | std::ios::trunc);
  corrupt.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
  corrupt.close();
  EXPECT_NE(RunCli({"convert", "--from-fdb", store_, copy}, &out_, &err_),
            0);
  // The re-encode path must refuse the same bitrot too — otherwise a
  // version change would launder it into a freshly checksummed file.
  EXPECT_NE(RunCli({"convert", "--from-fdb", store_, copy,
                    "--store-version=1"},
                   &out_, &err_),
            0);
}

TEST_F(FlipperCliEndToEnd, MineRejectsACorruptStore) {
  ASSERT_EQ(RunCli({"convert", basket_, taxonomy_, store_}, &out_, &err_),
            0)
      << err_;
  // Truncate the store mid-file.
  std::ifstream in(store_, std::ios::binary);
  std::ostringstream oss;
  oss << in.rdbuf();
  const std::string bytes = oss.str();
  std::ofstream trunc(store_, std::ios::binary | std::ios::trunc);
  trunc.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  trunc.close();

  EXPECT_EQ(RunCli({"mine", "--input", store_}, &out_, &err_), 1);
  EXPECT_NE(err_.find("error:"), std::string::npos);
  EXPECT_EQ(RunCli({"inspect", store_}, &out_, &err_), 1);
  EXPECT_NE(err_.find("error:"), std::string::npos);
  // A failed inspect explains itself with the per-section diagnosis
  // rather than a bare open error.
  EXPECT_NE(err_.find("diagnosis:"), std::string::npos);
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

void DumpFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(FlipperCliEndToEnd, ValidateAndRepairRecoverATornStore) {
  ASSERT_EQ(RunCli({"convert", basket_, taxonomy_, store_}, &out_, &err_),
            0)
      << err_;
  ASSERT_EQ(RunCli({"validate", store_}, &out_, &err_), 0) << out_;
  EXPECT_NE(out_.find(": valid ("), std::string::npos);
  EXPECT_NE(out_.find("front_header"), std::string::npos);
  EXPECT_NE(out_.find("section_table"), std::string::npos);

  // Tear the file the way a crashed append session would: committed
  // bytes plus an uncommitted tail.
  const std::string base_bytes = SlurpFile(store_);
  DumpFile(store_, base_bytes + std::string(41, '\x7f'));

  EXPECT_EQ(RunCli({"validate", store_}, &out_, &err_), 1);
  EXPECT_NE(out_.find("corrupt but repairable"), std::string::npos);
  EXPECT_NE(out_.find("torn_tail"), std::string::npos);
  // --quiet keeps the verdict but drops the finding lines (they carry
  // "@ [offset, offset+size)" ranges).
  EXPECT_EQ(RunCli({"validate", store_, "--quiet"}, &out_, &err_), 1);
  EXPECT_NE(out_.find("corrupt but repairable"), std::string::npos);
  EXPECT_EQ(out_.find("@ ["), std::string::npos);

  // Inspect refuses the torn file but says why and how to fix it.
  EXPECT_EQ(RunCli({"inspect", store_}, &out_, &err_), 1);
  EXPECT_NE(err_.find("diagnosis:"), std::string::npos);
  EXPECT_NE(err_.find("torn_tail"), std::string::npos);
  EXPECT_NE(err_.find("repair"), std::string::npos);

  // Dry run (the default) plans the truncation but modifies nothing.
  EXPECT_EQ(RunCli({"repair", store_}, &out_, &err_), 0) << err_;
  EXPECT_NE(out_.find("would truncate 41 torn bytes"), std::string::npos);
  EXPECT_NE(out_.find("dry run: nothing modified"), std::string::npos);
  EXPECT_EQ(SlurpFile(store_), base_bytes + std::string(41, '\x7f'));
  EXPECT_EQ(RunCli({"repair", store_, "--apply", "--dry-run"},
                   &out_, &err_),
            2);
  EXPECT_NE(err_.find("mutually exclusive"), std::string::npos);

  // --apply restores the committed bytes exactly.
  EXPECT_EQ(RunCli({"repair", store_, "--apply"}, &out_, &err_), 0)
      << err_;
  EXPECT_NE(out_.find("repaired:"), std::string::npos);
  EXPECT_EQ(SlurpFile(store_), base_bytes);
  EXPECT_EQ(RunCli({"validate", store_}, &out_, &err_), 0) << out_;
  EXPECT_EQ(RunCli({"mine", "--input", store_, "--gamma=0.6",
                    "--epsilon=0.35", "--minsup=0.1,0.1,0.1"},
                   &out_, &err_),
            0)
      << err_;

  // Repairing a clean store is a no-op.
  EXPECT_EQ(RunCli({"repair", store_, "--apply"}, &out_, &err_), 0);
  EXPECT_NE(out_.find("already clean"), std::string::npos);
  EXPECT_EQ(SlurpFile(store_), base_bytes);
}

TEST_F(FlipperCliEndToEnd, ValidateAndRepairRefuseGarbage) {
  const std::string garbage = ::testing::TempDir() + "cli_garbage.fdb";
  DumpFile(garbage, std::string(4096, '\x5a'));
  EXPECT_EQ(RunCli({"validate", garbage}, &out_, &err_), 3);
  EXPECT_NE(out_.find("UNRECOVERABLE"), std::string::npos);
  EXPECT_EQ(RunCli({"repair", garbage, "--apply"}, &out_, &err_), 3);
  EXPECT_NE(err_.find("unrecoverable"), std::string::npos);
  // Refusal never modifies the file.
  EXPECT_EQ(SlurpFile(garbage), std::string(4096, '\x5a'));

  EXPECT_EQ(RunCli({"validate", ::testing::TempDir() + "missing.fdb"},
                   &out_, &err_),
            2);
  EXPECT_NE(err_.find("error:"), std::string::npos);
}

TEST_F(FlipperCliEndToEnd, DatagenWritesAMineableStore) {
  const std::string generated = ::testing::TempDir() + "cli_datagen.fdb";
  ASSERT_EQ(RunCli({"datagen", "groceries", generated, "--txns=400",
                    "--segment-txns=128"},
                   &out_, &err_),
            0)
      << err_;
  EXPECT_NE(out_.find("wrote " + generated), std::string::npos);

  ASSERT_EQ(RunCli({"inspect", generated}, &out_, &err_), 0) << err_;
  EXPECT_NE(out_.find("checksums: OK"), std::string::npos);
  EXPECT_NE(out_.find("segments: 4"), std::string::npos);  // 400/128

  EXPECT_EQ(RunCli({"mine", "--input", generated, "--format=json"},
                   &out_, &err_),
            0)
      << err_;
  EXPECT_EQ(RunCli({"datagen", "nonsense", generated}, &out_, &err_), 2);
}

TEST_F(FlipperCliEndToEnd, UsageErrorsReturnTwo) {
  EXPECT_EQ(RunCli({"convert", "only_one_arg"}, &out_, &err_), 2);
  EXPECT_NE(err_.find("error:"), std::string::npos);
  EXPECT_EQ(RunCli({"inspect"}, &out_, &err_), 2);
  ASSERT_EQ(RunCli({"--help"}, &out_, &err_), 0);
  EXPECT_NE(out_.find("convert"), std::string::npos);
  EXPECT_NE(out_.find("datagen"), std::string::npos);
}

TEST(ScanCells, ToggleDoesNotChangeResults) {
  testutil::Dataset data = testutil::RandomDataset(1234, 5, 3, 3, 600, 9);
  MiningConfig config;
  config.gamma = 0.45;
  config.epsilon = 0.2;
  config.min_support = {0.003, 0.002, 0.002};

  config.enable_scan_cells = true;
  auto with_scan = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(with_scan.ok());
  config.enable_scan_cells = false;
  auto without_scan = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(without_scan.ok());
  EXPECT_TRUE(SamePatterns(with_scan->patterns, without_scan->patterns));
}

}  // namespace
}  // namespace flipper
