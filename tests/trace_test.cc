// Observability: the trace subsystem (common/trace.h). Disabled
// recording is a no-op, spans survive concurrent recording from many
// threads (the TSan target for the lock-free per-thread buffers), the
// Chrome JSON export is structurally valid, tracing does not change
// mined patterns, the CLI writes --trace-out files, and — the
// acceptance bar — the driver-thread stage spans cover >= 95% of the
// mining wall time on the groceries example.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cli/cli.h"
#include "common/trace.h"
#include "core/flipper_miner.h"
#include "core/pattern_io.h"
#include "datagen/groceries_sim.h"
#include "test_util.h"

namespace flipper {
namespace {

/// Every trace test owns the global recorder for its duration.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::SetEnabled(false);
    trace::Clear();
  }
  void TearDown() override {
    trace::SetEnabled(false);
    trace::Clear();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(trace::Enabled());
  {
    FLIPPER_TRACE_SPAN("noop", "stage");
    FLIPPER_TRACE_SPAN_HK("noop_hk", "stage", 2, 3);
  }
  trace::Span span;
  span.name = "direct";
  span.cat = "stage";
  trace::RecordSpan(span);
  EXPECT_EQ(trace::SpanCount(), 0u);
}

TEST_F(TraceTest, RecordsSpansWithArgsAndNames) {
  trace::SetEnabled(true);
  trace::SetThreadName("test-main");
  {
    FLIPPER_TRACE_SPAN("alpha", "stage");
    FLIPPER_TRACE_SPAN_HK("beta", "detail", 3, 4);
  }
  trace::SetEnabled(false);
  ASSERT_EQ(trace::SpanCount(), 2u);

  std::map<std::string, trace::Span> by_name;
  std::string thread_name;
  const int my_tid = trace::CurrentThreadId();
  trace::ForEachSpan(
      [&](int tid, const std::string& name, const trace::Span& s) {
        EXPECT_EQ(tid, my_tid);
        thread_name = name;
        by_name[s.name] = s;
      });
  EXPECT_EQ(thread_name, "test-main");
  ASSERT_TRUE(by_name.count("alpha"));
  ASSERT_TRUE(by_name.count("beta"));
  EXPECT_STREQ(by_name["alpha"].cat, "stage");
  EXPECT_EQ(by_name["alpha"].arg_kind, trace::Span::ArgKind::kNone);
  EXPECT_EQ(by_name["beta"].arg_kind, trace::Span::ArgKind::kCell);
  EXPECT_EQ(by_name["beta"].arg0, 3);
  EXPECT_EQ(by_name["beta"].arg1, 4);
  // Both spans closed inside the same enclosing block: the inner one
  // (destroyed first) cannot outlast the outer.
  EXPECT_GE(by_name["beta"].start_ns, by_name["alpha"].start_ns);
}

TEST_F(TraceTest, ClearDropsSpansButKeepsRecording) {
  trace::SetEnabled(true);
  { FLIPPER_TRACE_SPAN("before", "stage"); }
  EXPECT_EQ(trace::SpanCount(), 1u);
  trace::Clear();
  EXPECT_EQ(trace::SpanCount(), 0u);
  { FLIPPER_TRACE_SPAN("after", "stage"); }
  EXPECT_EQ(trace::SpanCount(), 1u);
}

// The TSan target: many threads recording concurrently (chunk
// rollover included — 3000 spans per thread crosses the 4096-span
// chunk boundary in aggregate and per-buffer), with a concurrent
// exporter reading published counts.
TEST_F(TraceTest, ConcurrentRecordingIsSafeAndLosesNothing) {
  trace::SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 5000;  // > one 4096-span chunk
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      trace::SetThreadName("recorder");
      for (int i = 0; i < kSpansPerThread; ++i) {
        FLIPPER_TRACE_SPAN_HK("concurrent", "task", t, i);
      }
    });
  }
  // Concurrent reader: export while recording is in flight (the API
  // documents this as safe; spans published later may be missed).
  std::ostringstream racing_export;
  trace::ExportChromeJson(racing_export);
  for (auto& th : threads) th.join();
  trace::SetEnabled(false);

  EXPECT_EQ(trace::SpanCount(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  // Per-thread order is preserved: arg1 (the loop index) must be
  // strictly increasing within each tid.
  std::map<int, int64_t> last_index;
  trace::ForEachSpan(
      [&](int tid, const std::string&, const trace::Span& s) {
        if (std::string(s.name) != "concurrent") return;
        auto [it, inserted] = last_index.emplace(tid, s.arg1);
        if (!inserted) {
          EXPECT_LT(it->second, s.arg1);
          it->second = s.arg1;
        }
      });
  EXPECT_EQ(last_index.size(), static_cast<size_t>(kThreads));
}

/// Splits an ExportChromeJson document into lines and runs structural
/// checks shared by the in-process and CLI-file tests. Returns the
/// event lines (everything between the header and the closing line).
std::vector<std::string> ValidateChromeJson(const std::string& json) {
  std::vector<std::string> lines;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  EXPECT_GE(lines.size(), 3u);
  EXPECT_EQ(lines.front(), "{\"traceEvents\":[");
  EXPECT_EQ(lines.back(), "]}");
  std::vector<std::string> events(lines.begin() + 1, lines.end() - 1);
  for (size_t i = 0; i < events.size(); ++i) {
    const std::string& e = events[i];
    // One event per line, objects comma-separated except the last.
    EXPECT_EQ(e.rfind("{", 0), 0u) << e;
    if (i + 1 < events.size()) {
      EXPECT_EQ(e.substr(e.size() - 2), "},") << e;
    } else {
      EXPECT_EQ(e.back(), '}') << e;
    }
    EXPECT_NE(e.find("\"ph\":"), std::string::npos) << e;
    EXPECT_NE(e.find("\"pid\":1"), std::string::npos) << e;
  }
  return events;
}

TEST_F(TraceTest, ChromeJsonExportIsStructurallyValid) {
  trace::SetEnabled(true);
  trace::SetThreadName("test \"main\"");  // exercises escaping
  { FLIPPER_TRACE_SPAN("alpha", "stage"); }
  { FLIPPER_TRACE_SPAN_HK("beta", "detail", 2, 5); }
  trace::SetEnabled(false);

  std::ostringstream out;
  trace::ExportChromeJson(out);
  const std::vector<std::string> events = ValidateChromeJson(out.str());

  bool saw_metadata = false;
  bool saw_alpha = false;
  bool saw_beta = false;
  for (const std::string& e : events) {
    if (e.find("\"ph\":\"M\"") != std::string::npos) {
      EXPECT_NE(e.find("\"thread_name\""), std::string::npos);
      EXPECT_NE(e.find("test \\\"main\\\""), std::string::npos);
      saw_metadata = true;
    }
    if (e.find("\"name\":\"alpha\"") != std::string::npos) {
      saw_alpha = true;
      EXPECT_NE(e.find("\"ph\":\"X\""), std::string::npos);
      EXPECT_NE(e.find("\"cat\":\"stage\""), std::string::npos);
      EXPECT_NE(e.find("\"ts\":"), std::string::npos);
      EXPECT_NE(e.find("\"dur\":"), std::string::npos);
    }
    if (e.find("\"name\":\"beta\"") != std::string::npos) {
      saw_beta = true;
      EXPECT_NE(e.find("\"args\":{\"h\":2,\"k\":5}"), std::string::npos)
          << e;
    }
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_beta);
}

std::string PatternsCsv(const MiningResult& result) {
  std::ostringstream out;
  EXPECT_TRUE(WritePatternsCsv(result.patterns, nullptr, out).ok());
  return out.str();
}

TEST_F(TraceTest, TracingDoesNotChangeMinedPatterns) {
  testutil::Dataset data = testutil::RandomDataset(99);
  MiningConfig config;
  config.gamma = 0.4;
  config.epsilon = 0.2;
  config.min_support = {0.05, 0.02, 0.02};
  config.num_threads = 4;

  auto plain = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(plain.ok()) << plain.status();

  trace::SetEnabled(true);
  auto traced = FlipperMiner::Run(data.db, data.taxonomy, config);
  trace::SetEnabled(false);
  ASSERT_TRUE(traced.ok()) << traced.status();
  EXPECT_GT(trace::SpanCount(), 0u);

  EXPECT_EQ(PatternsCsv(*plain), PatternsCsv(*traced));
}

// Acceptance bar: on the groceries example the non-overlapping
// driver-thread "stage" spans must account for >= 95% of the root
// "mine" span's wall time — i.e. the trace explains where a mining
// run's time goes instead of leaving untraced gaps.
TEST_F(TraceTest, StageSpansCoverMiningWallTimeOnGroceries) {
  GroceriesParams params;
  params.num_transactions = 9'800;
  auto dataset = GenerateGroceries(params);
  ASSERT_TRUE(dataset.ok()) << dataset.status();

  MiningConfig config;
  config.gamma = 0.3;
  config.epsilon = 0.1;
  config.min_support = {0.01, 0.005, 0.002, 0.001};
  config.num_threads = 0;  // hardware concurrency

  trace::SetEnabled(true);
  auto result =
      FlipperMiner::Run(dataset->db, dataset->taxonomy, config);
  trace::SetEnabled(false);
  ASSERT_TRUE(result.ok()) << result.status();

  uint64_t mine_dur_ns = 0;
  int driver_tid = -1;
  trace::ForEachSpan(
      [&](int tid, const std::string&, const trace::Span& s) {
        if (std::string(s.cat) == "run" &&
            std::string(s.name) == "mine") {
          mine_dur_ns = s.dur_ns;
          driver_tid = tid;
        }
      });
  ASSERT_GT(mine_dur_ns, 0u);
  ASSERT_GE(driver_tid, 0);

  uint64_t stage_dur_ns = 0;
  std::map<std::string, uint64_t> per_stage;
  trace::ForEachSpan(
      [&](int tid, const std::string&, const trace::Span& s) {
        if (tid != driver_tid) return;
        if (std::string(s.cat) != "stage") return;
        stage_dur_ns += s.dur_ns;
        per_stage[s.name] += s.dur_ns;
      });

  const double coverage =
      static_cast<double>(stage_dur_ns) / mine_dur_ns;
  EXPECT_GE(coverage, 0.95)
      << "stage spans cover only " << coverage * 100.0
      << "% of the mine span";
  // Stages never nest or overlap on the driver thread, so their sum
  // cannot exceed the root (small epsilon for clock granularity).
  EXPECT_LE(coverage, 1.001);
  // The major stages all appear.
  for (const char* stage :
       {"pool_start", "views_build", "singletons", "count_wait",
        "evaluate", "evict", "assemble"}) {
    EXPECT_TRUE(per_stage.count(stage)) << "no '" << stage << "' span";
  }
}

/// Drives RunFlipperCli as a subprocess would, capturing both streams.
int RunCli(const std::vector<std::string>& cli_args,
           std::string* out_text, std::string* err_text) {
  std::vector<const char*> argv;
  argv.push_back("flipper_cli");
  for (const std::string& arg : cli_args) argv.push_back(arg.c_str());
  std::ostringstream out;
  std::ostringstream err;
  const int rc = RunFlipperCli(static_cast<int>(argv.size()),
                               argv.data(), out, err);
  *out_text = out.str();
  *err_text = err.str();
  return rc;
}

TEST_F(TraceTest, CliWritesTraceAndMetricsFilesAndLeavesTracingOff) {
  const std::string store = ::testing::TempDir() + "trace_cli.fdb";
  const std::string trace_path =
      ::testing::TempDir() + "trace_cli.json";
  const std::string metrics_path =
      ::testing::TempDir() + "trace_cli_metrics.json";
  std::string out;
  std::string err;
  ASSERT_EQ(RunCli({"datagen", "groceries", store, "--txns", "2000"},
                   &out, &err),
            0)
      << err;
  ASSERT_EQ(RunCli({"mine", "--input", store, "--gamma=0.3",
                    "--epsilon=0.1", "--minsup=0.01,0.005,0.002,0.001",
                    "--trace-out", trace_path, "--metrics-json",
                    metrics_path},
                   &out, &err),
            0)
      << err;
  EXPECT_FALSE(trace::Enabled());  // the CLI restores the global state

  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.is_open()) << metrics_path;
  std::stringstream metrics_buf;
  metrics_buf << metrics_in.rdbuf();
  const std::string metrics = metrics_buf.str();
  EXPECT_NE(metrics.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(metrics.find("\"mine.cells\""), std::string::npos);
  EXPECT_NE(metrics.find("\"pool.utilization\""), std::string::npos);
  EXPECT_NE(metrics.find("\"stage.count_wait_ms\""), std::string::npos);

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.is_open()) << trace_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::vector<std::string> events = ValidateChromeJson(buf.str());
  bool saw_mine = false;
  bool saw_driver = false;
  for (const std::string& e : events) {
    if (e.find("\"name\":\"mine\"") != std::string::npos) {
      saw_mine = true;
    }
    if (e.find("\"driver\"") != std::string::npos) saw_driver = true;
  }
  EXPECT_TRUE(saw_mine);
  EXPECT_TRUE(saw_driver);
}

// The satellite-1 isolation proof: two miner runs traced CONCURRENTLY,
// each into its own Session, must stay fully separate — every session
// sees exactly one "mine" root span (its own run's), the span totals
// account for both runs independently, and nothing leaks into the
// process-default session. Before sessions existed this was impossible:
// both runs' spans landed interleaved in one global buffer.
TEST_F(TraceTest, ConcurrentSessionsIsolateTheirSpans) {
  testutil::Dataset data = testutil::RandomDataset(77);
  MiningConfig config;
  config.gamma = 0.4;
  config.epsilon = 0.2;
  config.min_support = {0.05, 0.02, 0.02};
  config.num_threads = 2;

  auto solo = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(solo.ok()) << solo.status();
  const std::string expected = PatternsCsv(*solo);

  constexpr int kRuns = 2;
  trace::Session sessions[kRuns];
  std::string bodies[kRuns];
  std::vector<std::thread> threads;
  for (int i = 0; i < kRuns; ++i) {
    sessions[i].SetEnabled(true);
    threads.emplace_back([&, i]() {
      trace::SessionScope scope(&sessions[i]);
      auto result = FlipperMiner::Run(data.db, data.taxonomy, config);
      ASSERT_TRUE(result.ok()) << result.status();
      bodies[i] = PatternsCsv(*result);
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kRuns; ++i) {
    sessions[i].SetEnabled(false);
    EXPECT_EQ(bodies[i], expected) << "run " << i;
    EXPECT_GT(sessions[i].SpanCount(), 0u) << "run " << i;
    size_t mine_roots = 0;
    sessions[i].ForEachSpan(
        [&](int, const std::string&, const trace::Span& span) {
          if (std::string_view(span.name) == "mine") ++mine_roots;
        });
    EXPECT_EQ(mine_roots, 1u) << "run " << i
                              << " must hold exactly its own root span";
  }
  // Nothing leaked into the process-default session.
  EXPECT_EQ(trace::SpanCount(), 0u);
}

}  // namespace
}  // namespace flipper
