// Real-dataset simulators: shapes match the paper's datasets and the
// planted flipping structures are recovered by the miner.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/flipper_miner.h"
#include "datagen/census_sim.h"
#include "datagen/groceries_sim.h"
#include "datagen/medline_sim.h"

namespace flipper {
namespace {

/// True when `patterns` contains a pattern whose leaf itemset is
/// exactly the named items.
bool ContainsPattern(const SimulatedDataset& data,
                     const std::vector<FlippingPattern>& patterns,
                     const std::vector<std::string>& names,
                     const std::string& level1_label) {
  Itemset target;
  for (const std::string& name : names) {
    auto id = data.dict.Find(name);
    if (!id.ok()) return false;
    target.Insert(*id);
  }
  for (const FlippingPattern& p : patterns) {
    if (p.leaf_itemset == target) {
      return std::string(LabelToString(p.chain[0].label)) ==
             level1_label;
    }
  }
  return false;
}

void ExpectPlantedRecovered(const SimulatedDataset& data) {
  auto result =
      FlipperMiner::Run(data.db, data.taxonomy, data.paper_config);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const PlantedFlip& plant : data.planted) {
    EXPECT_TRUE(ContainsPattern(data, result->patterns, plant.leaf_names,
                                plant.level1_label))
        << data.name << ": planted pattern not recovered: "
        << plant.description << " (found " << result->patterns.size()
        << " patterns total)";
  }
  for (const FlippingPattern& p : result->patterns) {
    EXPECT_TRUE(p.IsValidFlip());
  }
}

TEST(GroceriesSim, ShapeMatchesPaper) {
  GroceriesParams params;
  auto data = GenerateGroceries(params);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->db.size(), 9800u);
  EXPECT_EQ(data->taxonomy.height(), 3);
  EXPECT_EQ(data->taxonomy.Level1().size(), 10u);
  EXPECT_EQ(data->name, "GROCERIES");
  EXPECT_TRUE(data->taxonomy.Validate().ok());
}

TEST(GroceriesSim, PlantedFlipsRecovered) {
  auto data = GenerateGroceries({});
  ASSERT_TRUE(data.ok());
  ExpectPlantedRecovered(*data);
}

TEST(GroceriesSim, RejectsTinySizes) {
  GroceriesParams params;
  params.num_transactions = 10;
  EXPECT_FALSE(GenerateGroceries(params).ok());
}

TEST(CensusSim, ShapeMatchesPaper) {
  auto data = GenerateCensus({});
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->db.size(), 32000u);
  EXPECT_EQ(data->taxonomy.height(), 2);
  EXPECT_EQ(data->db.max_width(), 3u);  // {occ|edu, age|occ, income}
  EXPECT_TRUE(data->taxonomy.Validate().ok());
}

TEST(CensusSim, PlantedFlipsRecovered) {
  auto data = GenerateCensus({});
  ASSERT_TRUE(data.ok());
  ExpectPlantedRecovered(*data);
}

TEST(MedlineSim, ShapeMatchesPaper) {
  MedlineParams params;
  params.num_citations = 64'000;  // scaled-down for test speed
  auto data = GenerateMedline(params);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->db.size(), 64000u);
  EXPECT_EQ(data->taxonomy.height(), 3);
  EXPECT_EQ(data->taxonomy.Level1().size(), 15u);
  EXPECT_TRUE(data->taxonomy.Validate().ok());
}

TEST(MedlineSim, PlantedFlipsRecoveredAtScale) {
  MedlineParams params;
  params.num_citations = 64'000;
  auto data = GenerateMedline(params);
  ASSERT_TRUE(data.ok());
  ExpectPlantedRecovered(*data);
}

TEST(Sims, DeterministicAcrossRuns) {
  auto a = GenerateGroceries({});
  auto b = GenerateGroceries({});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->db.total_items(), b->db.total_items());

  CensusParams census;
  census.num_records = 5000;
  auto c = GenerateCensus(census);
  auto d = GenerateCensus(census);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(c->db.total_items(), d->db.total_items());
}

}  // namespace
}  // namespace flipper
