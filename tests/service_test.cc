// Serve-daemon tests: protocol codec round trips, FIFO admission
// control, the LRU result cache, stat-based store invalidation, and a
// live end-to-end daemon over a real unix socket — N concurrent
// queries must each come back byte-identical to a solo in-process
// mine, repeats must hit the cache, and a store rewrite must
// invalidate it.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "service/client.h"
#include "service/mine_service.h"
#include "service/protocol.h"
#include "service/query_scheduler.h"
#include "service/result_cache.h"
#include "datagen/groceries_sim.h"
#include "service/server.h"
#include "service/store_registry.h"
#include "storage/store_writer.h"
#include "test_util.h"

namespace flipper {
namespace service {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// --- protocol ---------------------------------------------------------

TEST(Protocol, RequestRoundTripKeepsParamsAndLastWins) {
  Request request;
  request.verb = "mine";
  request.params = {{"store", "g"}, {"gamma", "0.5"}, {"gamma", "0.7"}};
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, "mine");
  EXPECT_EQ(decoded->params, request.params);
  EXPECT_EQ(decoded->Param("gamma"), "0.7");
  EXPECT_EQ(decoded->Param("missing", "fallback"), "fallback");
}

TEST(Protocol, ResponseRoundTripPreservesRawBody) {
  Response response;
  response.ok = true;
  response.meta = {{"cache", "hit"}, {"patterns", "3"}};
  // The body is raw bytes after the blank line: embedded newlines and
  // a blank line of its own must survive.
  response.body = "line one\n\nline three\n";
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->meta, response.meta);
  EXPECT_EQ(decoded->body, response.body);
  EXPECT_EQ(decoded->Meta("cache"), "hit");
}

TEST(Protocol, ErrorResponseFoldsNewlinesIntoOneLine) {
  Response response;
  response.ok = false;
  response.error = "first\nsecond";
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->error, "first second");
}

#ifndef _WIN32
TEST(Protocol, FrameRoundTripAndCleanEofOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "mine\nstore g\n";
  ASSERT_TRUE(WriteFrame(fds[0], payload).ok());
  auto read = ReadFrame(fds[1]);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
  // An orderly hangup at a frame boundary is NotFound, not IoError.
  ::close(fds[0]);
  auto eof = ReadFrame(fds[1]);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  ::close(fds[1]);
}
#endif

// --- scheduler --------------------------------------------------------

TEST(QuerySchedulerTest, CapsConcurrencyAndAdmitsEveryone) {
  QueryScheduler scheduler(/*max_concurrent=*/2, /*max_queued=*/64);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::atomic<int> admitted{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < 8; ++i) {
    workers.emplace_back([&]() {
      auto ticket = scheduler.Admit();
      ASSERT_TRUE(ticket.ok()) << ticket.status();
      const int now = running.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      running.fetch_sub(1);
      admitted.fetch_add(1);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(admitted.load(), 8);
  EXPECT_LE(peak.load(), 2);
  EXPECT_EQ(scheduler.stats().admitted, 8u);
  EXPECT_EQ(scheduler.stats().rejected, 0u);
  EXPECT_EQ(scheduler.stats().running, 0);
}

TEST(QuerySchedulerTest, RejectsWhenWaitingRoomIsFull) {
  QueryScheduler scheduler(/*max_concurrent=*/1, /*max_queued=*/1);
  auto held = scheduler.Admit();
  ASSERT_TRUE(held.ok());
  std::thread waiter([&]() {
    auto ticket = scheduler.Admit();  // fills the waiting room
    EXPECT_TRUE(ticket.ok()) << ticket.status();
  });
  // Wait until the waiter is actually queued so the rejection below is
  // deterministic.
  while (scheduler.stats().waiting < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto rejected = scheduler.Admit();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  held = Result<QueryScheduler::Ticket>(QueryScheduler::Ticket());
  waiter.join();
  EXPECT_EQ(scheduler.stats().rejected, 1u);
}

// --- result cache -----------------------------------------------------

ResultCache::CachedResult Body(const std::string& body) {
  ResultCache::CachedResult result;
  result.body = body;
  result.num_patterns = 1;
  return result;
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedByBytes) {
  ResultCache cache(/*capacity_bytes=*/10);
  cache.Put("a", Body("aaaa"));
  cache.Put("b", Body("bbbb"));
  ASSERT_TRUE(cache.Get("a").has_value());  // bumps `a` to MRU
  cache.Put("c", Body("cccc"));             // 12 bytes: evicts `b`
  EXPECT_FALSE(cache.Get("b").has_value());
  ASSERT_TRUE(cache.Get("a").has_value());
  ASSERT_TRUE(cache.Get("c").has_value());
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 8u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Put("a", Body("aaaa"));
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, OversizedBodyIsNotCached) {
  ResultCache cache(4);
  cache.Put("big", Body("way too large"));
  EXPECT_FALSE(cache.Get("big").has_value());
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// --- cache key --------------------------------------------------------

TEST(CanonicalCacheKeyTest, ExcludesExecutionKnobs) {
  MineRequest a;
  MineRequest b = a;
  // Execution knobs are proven output-invariant; the key must treat
  // them as equal so a cached body answers all combinations.
  b.counter = CounterKind::kVertical;
  b.num_threads = 3;
  b.enable_pipelining = false;
  b.enable_flat_trie = false;
  EXPECT_EQ(CanonicalCacheKey(a), CanonicalCacheKey(b));
  b.gamma = 0.5;
  EXPECT_NE(CanonicalCacheKey(a), CanonicalCacheKey(b));
  MineRequest c = a;
  c.format = "csv";
  EXPECT_NE(CanonicalCacheKey(a), CanonicalCacheKey(c));
}

// --- store registry ---------------------------------------------------

void WriteDataset(const std::string& path,
                  const testutil::Dataset& data) {
  Status written = storage::WriteStoreFile(
      path, data.db, data.dict, data.taxonomy,
      storage::StoreWriter::Options{});
  ASSERT_TRUE(written.ok()) << written;
}

TEST(StoreRegistryTest, ReloadsWhenTheFileChangesOnDisk) {
  const std::string path = TempPath("registry_reload.fdb");
  WriteDataset(path, testutil::RandomDataset(11, 4, 2, 3, 150));
  StoreRegistry registry;
  ASSERT_TRUE(registry.Add("d", path).ok());
  auto first = registry.Get("d");
  ASSERT_TRUE(first.ok()) << first.status();
  const std::string fp1 = (*first)->fingerprint;
  EXPECT_EQ(fp1.size(), 16u);

  // Unchanged file: same published entry, same fingerprint.
  auto again = registry.Get("d");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->fingerprint, fp1);
  EXPECT_EQ(again->get(), first->get());

  // Rewrite with different contents (different size): the next Get
  // must reload into a fresh entry with a new fingerprint while the
  // old shared_ptr stays alive for in-flight queries.
  WriteDataset(path, testutil::RandomDataset(12, 4, 2, 3, 220));
  auto reloaded = registry.Get("d");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_NE((*reloaded)->fingerprint, fp1);
  EXPECT_NE(reloaded->get(), first->get());
  EXPECT_GT((*first)->reader.db().size(), 0u);  // old entry still usable
  std::remove(path.c_str());
}

TEST(StoreRegistryTest, RejectsDuplicateAndUnknownNames) {
  const std::string path = TempPath("registry_names.fdb");
  WriteDataset(path, testutil::RandomDataset(13, 3, 2, 2, 60));
  StoreRegistry registry;
  ASSERT_TRUE(registry.Add("d", path).ok());
  EXPECT_FALSE(registry.Add("d", path).ok());
  EXPECT_FALSE(registry.Add("bad name", path).ok());
  EXPECT_FALSE(registry.Get("missing").ok());
  std::remove(path.c_str());
}

#ifndef _WIN32

// --- end-to-end daemon ------------------------------------------------

/// The end-to-end datasets: the groceries simulator reliably emits
/// flipping patterns under the default thresholds (uniform random
/// leaves would mine an empty answer set, making byte comparisons
/// vacuous).
void WriteGroceries(const std::string& path, uint32_t txns,
                    uint64_t seed) {
  GroceriesParams params;
  params.num_transactions = txns;
  params.seed = seed;
  auto data = GenerateGroceries(params);
  ASSERT_TRUE(data.ok()) << data.status();
  Status written = storage::WriteStoreFile(
      path, data->db, data->dict, data->taxonomy,
      storage::StoreWriter::Options{});
  ASSERT_TRUE(written.ok()) << written;
}

/// Distinct output-affecting configs: the daemon cannot satisfy one
/// from another's cache entry, so each first run is a true miss. Every
/// variant still mines a non-empty answer set on the groceries data.
std::vector<std::vector<std::pair<std::string, std::string>>>
DistinctConfigs() {
  return {
      {{"format", "csv"}},
      {{"format", "csv"}, {"topk", "1"}},
      {{"format", "csv"}, {"gamma", "0.35"}},
      {{"format", "csv"}, {"epsilon", "0.15"}},
      {{"format", "json"}},
      {{"format", "json"}, {"measure", "cosine"}},
      {{"format", "text"}, {"minsup", "0.02,0.002,0.001"}},
      {{"format", "csv"}, {"pruning", "support"}, {"topk", "7"}},
  };
}

/// What a solo one-shot mine of `path` with `params` prints — the byte
/// oracle for the daemon's response body.
std::string SoloBody(const std::string& path,
                     const std::vector<std::pair<std::string, std::string>>&
                         params) {
  auto reader = storage::StoreReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status();
  auto request = MineRequestFromParams(params);
  EXPECT_TRUE(request.ok()) << request.status();
  auto outcome =
      ExecuteMineRequest(reader->db(), reader->taxonomy(),
                         &reader->dict(), nullptr, *request, nullptr);
  EXPECT_TRUE(outcome.ok()) << outcome.status();
  return outcome->body;
}

Result<Response> MineOnce(
    const std::string& socket_path, const std::string& store,
    const std::vector<std::pair<std::string, std::string>>& params) {
  FLIPPER_ASSIGN_OR_RETURN(Client client,
                           Client::ConnectWithRetry(socket_path, 10000));
  Request request;
  request.verb = "mine";
  request.params.emplace_back("store", store);
  for (const auto& [key, value] : params) {
    request.params.emplace_back(key, value);
  }
  return client.Call(request);
}

TEST(ServerTest, ConcurrentQueriesAreByteIdenticalToSoloRuns) {
  const std::string store_path = TempPath("server_e2e.fdb");
  WriteGroceries(store_path, 1500, 1);
  const auto configs = DistinctConfigs();
  std::vector<std::string> expected;
  for (const auto& params : configs) {
    expected.push_back(SoloBody(store_path, params));
    // More than a bare CSV/JSON/text header: actual patterns.
    ASSERT_GT(std::count(expected.back().begin(), expected.back().end(),
                         '\n'),
              1)
        << "config " << expected.size() - 1 << " mined nothing";
  }

  ServerOptions options;
  options.socket_path = TempPath("server_e2e.sock");
  options.max_concurrent = 8;
  Server server(options);
  ASSERT_TRUE(server.AddStore("d", store_path).ok());
  ASSERT_TRUE(server.Start().ok());

  // One client per config, all in flight at once: every response must
  // be a byte-for-byte match of the solo run, proving the re-entrant
  // miner over the shared views never cross-talks between queries.
  std::vector<std::thread> workers;
  std::vector<std::string> bodies(configs.size());
  std::vector<std::string> cache_meta(configs.size());
  std::atomic<int> failures{0};
  for (size_t i = 0; i < configs.size(); ++i) {
    workers.emplace_back([&, i]() {
      auto response = MineOnce(options.socket_path, "d", configs[i]);
      if (!response.ok() || !response->ok) {
        failures.fetch_add(1);
        return;
      }
      bodies[i] = response->body;
      cache_meta[i] = response->Meta("cache");
    });
  }
  for (std::thread& worker : workers) worker.join();
  ASSERT_EQ(failures.load(), 0);
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(bodies[i], expected[i]) << "config " << i;
    EXPECT_EQ(cache_meta[i], "miss") << "config " << i;
  }

  // A repeat of config 0 is a verified cache hit with the same bytes.
  auto repeat = MineOnce(options.socket_path, "d", configs[0]);
  ASSERT_TRUE(repeat.ok()) << repeat.status();
  ASSERT_TRUE(repeat->ok) << repeat->error;
  EXPECT_EQ(repeat->Meta("cache"), "hit");
  EXPECT_EQ(repeat->body, expected[0]);

  // Execution knobs hit the same cache entry: same output-affecting
  // options through a different engine path must be served from cache.
  auto knobs = configs[0];
  knobs.emplace_back("counter", "vertical");
  knobs.emplace_back("pipeline", "off");
  auto knob_hit = MineOnce(options.socket_path, "d", knobs);
  ASSERT_TRUE(knob_hit.ok() && knob_hit->ok);
  EXPECT_EQ(knob_hit->Meta("cache"), "hit");
  EXPECT_EQ(knob_hit->body, expected[0]);

  // `cache off` bypasses but still returns identical bytes.
  auto bypass = configs[0];
  bypass.emplace_back("cache", "off");
  auto uncached = MineOnce(options.socket_path, "d", bypass);
  ASSERT_TRUE(uncached.ok() && uncached->ok);
  EXPECT_EQ(uncached->Meta("cache"), "off");
  EXPECT_EQ(uncached->body, expected[0]);

  server.Stop();
  std::remove(store_path.c_str());
}

TEST(ServerTest, StoreRewriteInvalidatesCacheAndReloads) {
  const std::string store_path = TempPath("server_reload.fdb");
  WriteGroceries(store_path, 1500, 1);
  const std::vector<std::pair<std::string, std::string>> params = {
      {"format", "csv"}};
  const std::string before = SoloBody(store_path, params);
  // The oracle body must carry patterns, not just the CSV header —
  // otherwise old-vs-new comparisons below would be vacuous.
  ASSERT_GT(std::count(before.begin(), before.end(), '\n'), 1);

  ServerOptions options;
  options.socket_path = TempPath("server_reload.sock");
  Server server(options);
  ASSERT_TRUE(server.AddStore("d", store_path).ok());
  ASSERT_TRUE(server.Start().ok());

  auto first = MineOnce(options.socket_path, "d", params);
  ASSERT_TRUE(first.ok() && first->ok);
  EXPECT_EQ(first->body, before);
  const std::string fp1 = first->Meta("fingerprint");

  // Replace the store's contents on disk. The daemon must serve the
  // new dataset — a stale cache hit keyed on the old fingerprint would
  // return `before`.
  WriteGroceries(store_path, 2500, 7);
  const std::string after = SoloBody(store_path, params);
  ASSERT_NE(before, after);
  auto second = MineOnce(options.socket_path, "d", params);
  ASSERT_TRUE(second.ok() && second->ok);
  EXPECT_NE(second->Meta("fingerprint"), fp1);
  EXPECT_EQ(second->Meta("cache"), "miss");
  EXPECT_EQ(second->body, after);

  server.Stop();
  std::remove(store_path.c_str());
}

TEST(ServerTest, ShutdownVerbAcknowledgesThenStopsTheDaemon) {
  const std::string store_path = TempPath("server_shutdown.fdb");
  WriteGroceries(store_path, 200, 3);
  ServerOptions options;
  options.socket_path = TempPath("server_shutdown.sock");
  Server server(options);
  ASSERT_TRUE(server.AddStore("d", store_path).ok());
  ASSERT_TRUE(server.Start().ok());

  std::thread waiter([&]() { server.Wait(); });
  auto client = Client::ConnectWithRetry(options.socket_path, 10000);
  ASSERT_TRUE(client.ok()) << client.status();
  Request request;
  request.verb = "shutdown";
  auto response = client->Call(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->ok);
  waiter.join();  // Wait() returns: the daemon is down
  EXPECT_FALSE(Client::Connect(options.socket_path).ok());
  std::remove(store_path.c_str());
}

TEST(ServerTest, UnknownStoreAndBadOptionAreCleanErrors) {
  const std::string store_path = TempPath("server_errors.fdb");
  WriteGroceries(store_path, 200, 5);
  ServerOptions options;
  options.socket_path = TempPath("server_errors.sock");
  Server server(options);
  ASSERT_TRUE(server.AddStore("d", store_path).ok());
  ASSERT_TRUE(server.Start().ok());

  auto missing = MineOnce(options.socket_path, "nope", {});
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_FALSE(missing->ok);

  auto bad = MineOnce(options.socket_path, "d", {{"gamma", "2.5"}});
  ASSERT_TRUE(bad.ok()) << bad.status();
  EXPECT_FALSE(bad->ok);
  EXPECT_NE(bad->error.find("'2.5'"), std::string::npos) << bad->error;

  server.Stop();
  std::remove(store_path.c_str());
}

#endif  // !_WIN32

}  // namespace
}  // namespace service
}  // namespace flipper
