// Unit + property tests for the correlation measures: closed-form
// values, the generalized-mean ordering of Table 2, null-invariance
// (vs. the expectation-based measures' instability of Table 1), and
// the Theorem-1/Theorem-2 bounds.

#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "common/rng.h"
#include "measures/bounds.h"
#include "measures/expectation_based.h"
#include "measures/measure.h"

namespace flipper {
namespace {

TEST(Measures, PairClosedForms) {
  // sup(AB)=30, sup(A)=60, sup(B)=40: P(AB|A)=0.5, P(AB|B)=0.75.
  EXPECT_DOUBLE_EQ(
      Correlation2(MeasureKind::kAllConfidence, 30, 60, 40), 0.5);
  EXPECT_DOUBLE_EQ(
      Correlation2(MeasureKind::kMaxConfidence, 30, 60, 40), 0.75);
  EXPECT_DOUBLE_EQ(Correlation2(MeasureKind::kKulczynski, 30, 60, 40),
                   (0.5 + 0.75) / 2);
  EXPECT_NEAR(Correlation2(MeasureKind::kCosine, 30, 60, 40),
              std::sqrt(0.5 * 0.75), 1e-12);
  // Coherence (harmonic): 2 / (1/0.5 + 1/0.75) = 2 * 30 / (60 + 40).
  EXPECT_NEAR(Correlation2(MeasureKind::kCoherence, 30, 60, 40),
              2.0 * 30 / 100, 1e-12);
}

TEST(Measures, PerfectAndZeroCorrelation) {
  for (MeasureKind kind : kAllMeasures) {
    EXPECT_DOUBLE_EQ(Correlation2(kind, 50, 50, 50), 1.0)
        << MeasureKindToString(kind);
    EXPECT_DOUBLE_EQ(Correlation2(kind, 0, 50, 50), 0.0)
        << MeasureKindToString(kind);
  }
}

TEST(Measures, KulcMatchesPaperTable1Examples) {
  // Table 1: Kulc(A,B) = 0.40 for sup 1000/1000/400; Kulc(C,D) = 0.02
  // for sup 200/200/4.
  EXPECT_NEAR(Correlation2(MeasureKind::kKulczynski, 400, 1000, 1000),
              0.40, 1e-12);
  EXPECT_NEAR(Correlation2(MeasureKind::kKulczynski, 4, 200, 200), 0.02,
              1e-12);
}

TEST(Measures, ParseRoundTrip) {
  for (MeasureKind kind : kAllMeasures) {
    auto parsed = ParseMeasureKind(MeasureKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(ParseMeasureKind("kulc").ok());
  EXPECT_FALSE(ParseMeasureKind("lift").ok());
}

TEST(Measures, AntiMonotonicityFlags) {
  EXPECT_TRUE(IsAntiMonotonic(MeasureKind::kAllConfidence));
  EXPECT_TRUE(IsAntiMonotonic(MeasureKind::kCoherence));
  EXPECT_FALSE(IsAntiMonotonic(MeasureKind::kCosine));
  EXPECT_FALSE(IsAntiMonotonic(MeasureKind::kKulczynski));
  EXPECT_FALSE(IsAntiMonotonic(MeasureKind::kMaxConfidence));
}

// --- Property sweeps over random support configurations. ---

class MeasurePropertyTest : public ::testing::TestWithParam<uint64_t> {};

struct RandomItemset {
  uint32_t sup;
  std::vector<uint32_t> item_sups;
};

RandomItemset MakeRandomItemset(Rng* rng, int max_k = 5) {
  RandomItemset out;
  const int k = 2 + static_cast<int>(rng->Below(
                        static_cast<uint64_t>(max_k - 1)));
  uint32_t min_item_sup = 0;
  for (int i = 0; i < k; ++i) {
    const auto s = static_cast<uint32_t>(rng->Uniform(1, 1000));
    out.item_sups.push_back(s);
    min_item_sup = i == 0 ? s : std::min(min_item_sup, s);
  }
  out.sup = static_cast<uint32_t>(rng->Uniform(0, min_item_sup));
  return out;
}

// Table 2's mean ordering: min <= harmonic <= geometric <= arithmetic
// <= max.
TEST_P(MeasurePropertyTest, GeneralizedMeanOrdering) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const RandomItemset it = MakeRandomItemset(&rng);
    const double all_conf =
        Correlation(MeasureKind::kAllConfidence, it.sup, it.item_sups);
    const double coherence =
        Correlation(MeasureKind::kCoherence, it.sup, it.item_sups);
    const double cosine =
        Correlation(MeasureKind::kCosine, it.sup, it.item_sups);
    const double kulc =
        Correlation(MeasureKind::kKulczynski, it.sup, it.item_sups);
    const double max_conf =
        Correlation(MeasureKind::kMaxConfidence, it.sup, it.item_sups);
    EXPECT_LE(all_conf, coherence + 1e-9);
    EXPECT_LE(coherence, cosine + 1e-9);
    EXPECT_LE(cosine, kulc + 1e-9);
    EXPECT_LE(kulc, max_conf + 1e-9);
    EXPECT_GE(all_conf, 0.0);
    EXPECT_LE(max_conf, 1.0 + 1e-9);
  }
}

// Null-invariance: the five measures never change when the number of
// transactions N grows (N is not even an argument); the
// expectation-based verdict DOES change — exactly the Table-1 flaw.
TEST_P(MeasurePropertyTest, NullInvarianceVsExpectation) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 100; ++trial) {
    const RandomItemset it = MakeRandomItemset(&rng, 3);
    if (it.sup == 0) continue;
    uint32_t n_small = 0;
    for (uint32_t s : it.item_sups) n_small = std::max(n_small, s);
    n_small *= 2;
    const uint32_t n_large = n_small * 1000;

    // Null-invariant: identical under any N (no N parameter at all);
    // recompute to show determinism.
    for (MeasureKind kind : kAllMeasures) {
      EXPECT_DOUBLE_EQ(Correlation(kind, it.sup, it.item_sups),
                       Correlation(kind, it.sup, it.item_sups));
    }
    // Expectation-based: adding null transactions inflates the verdict
    // toward "positive" (E(sup) shrinks with N).
    EXPECT_LE(ExpectedSupport(it.item_sups, n_large),
              ExpectedSupport(it.item_sups, n_small) + 1e-9);
    EXPECT_GE(Lift(it.sup, it.item_sups, n_large),
              Lift(it.sup, it.item_sups, n_small) - 1e-9);
  }
}

// Theorem 1: Corr(A) <= max over (k-1)-subset correlations, for every
// null-invariant measure, on random support configurations. Subset
// supports are sampled >= sup(A) (anti-monotonicity).
TEST_P(MeasurePropertyTest, TheoremOneUpperBound) {
  Rng rng(GetParam() ^ 0x777);
  for (int trial = 0; trial < 300; ++trial) {
    const RandomItemset it = MakeRandomItemset(&rng);
    const size_t k = it.item_sups.size();
    std::vector<uint32_t> subset_sups;
    for (size_t i = 0; i < k; ++i) {
      // sup(A - {a_i}) in [sup(A), min sup of remaining items].
      uint32_t cap = 0;
      bool first = true;
      for (size_t j = 0; j < k; ++j) {
        if (j == i) continue;
        cap = first ? it.item_sups[j] : std::min(cap, it.item_sups[j]);
        first = false;
      }
      subset_sups.push_back(static_cast<uint32_t>(
          rng.Uniform(it.sup, std::max(it.sup, cap))));
    }
    for (MeasureKind kind : kAllMeasures) {
      EXPECT_TRUE(
          CheckTheoremOne(kind, it.sup, it.item_sups, subset_sups))
          << MeasureKindToString(kind) << " trial " << trial;
    }
  }
}

// Theorem 2 as an implication on random configurations (vacuously true
// cases included).
TEST_P(MeasurePropertyTest, TheoremTwoImplication) {
  Rng rng(GetParam() ^ 0xbeef);
  for (int trial = 0; trial < 300; ++trial) {
    const RandomItemset it = MakeRandomItemset(&rng);
    const size_t k = it.item_sups.size();
    std::vector<uint32_t> subset_with_a_sups;
    for (size_t j = 0; j + 1 < k; ++j) {
      uint32_t cap = it.item_sups[0];
      for (size_t i = 1; i < k; ++i) {
        if (i != j + 1) cap = std::min(cap, it.item_sups[i]);
      }
      subset_with_a_sups.push_back(static_cast<uint32_t>(
          rng.Uniform(it.sup, std::max(it.sup, cap))));
    }
    const double gamma = 0.1 + rng.NextDouble() * 0.8;
    for (MeasureKind kind : kAllMeasures) {
      EXPECT_TRUE(CheckTheoremTwo(kind, gamma, it.sup, it.item_sups,
                                  subset_with_a_sups))
          << MeasureKindToString(kind) << " trial " << trial
          << " gamma " << gamma;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeasurePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- Table 1 reproduction (Example 2). ---

TEST(ExpectationBased, Table1Verdicts) {
  // DB1: N = 20,000; DB2: N = 2,000.
  const std::vector<uint32_t> ab = {1000, 1000};
  EXPECT_EQ(ExpectationVerdict(400, ab, 20000), 1);   // positive
  EXPECT_EQ(ExpectationVerdict(400, ab, 2000), -1);   // negative
  const std::vector<uint32_t> cd = {200, 200};
  EXPECT_EQ(ExpectationVerdict(4, cd, 20000), 1);     // positive (!)
  EXPECT_EQ(ExpectationVerdict(4, cd, 2000), -1);     // negative
  // Expected supports as printed in Table 1.
  EXPECT_NEAR(ExpectedSupport(ab, 20000), 50.0, 1e-9);
  EXPECT_NEAR(ExpectedSupport(ab, 2000), 500.0, 1e-9);
  EXPECT_NEAR(ExpectedSupport(cd, 20000), 2.0, 1e-9);
  EXPECT_NEAR(ExpectedSupport(cd, 2000), 20.0, 1e-9);
}

TEST(ExpectationBased, ChiSquareAndPhi) {
  // Independent items: chi2 ~ 0, phi ~ 0.
  EXPECT_NEAR(ChiSquare2x2(25, 50, 50, 100), 0.0, 1e-9);
  EXPECT_NEAR(PhiCoefficient(25, 50, 50, 100), 0.0, 1e-9);
  // Perfect positive association.
  EXPECT_GT(ChiSquare2x2(50, 50, 50, 100), 90.0);
  EXPECT_NEAR(PhiCoefficient(50, 50, 50, 100), 1.0, 1e-9);
  // Perfect negative association.
  EXPECT_NEAR(PhiCoefficient(0, 50, 50, 100), -1.0, 1e-9);
  // Leverage sign mirrors the verdict.
  const std::vector<uint32_t> sups = {50, 50};
  EXPECT_GT(Leverage(50, sups, 100), 0.0);
  EXPECT_LT(Leverage(10, sups, 100), 0.0);
}

}  // namespace
}  // namespace flipper
