// Seed-driven fuzz of the serve protocol's decode surface: random
// byte mutations, truncations, splices and garbage must always come
// back as a clean Status (or a benign decoded value) — never a crash,
// a hang, or an over-read. The frame reader gets the same treatment
// over a real socketpair: torn prefixes, oversized length claims and
// mid-payload hangups each map to their documented status code.
//
// Reproduce a failure with
//
//   FLIPPER_FUZZ_SEED=<seed> FLIPPER_FUZZ_ITERS=1 ./protocol_fuzz_test

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/env.h"
#include "common/rng.h"
#include "service/protocol.h"

namespace flipper {
namespace service {
namespace {

/// A spread of valid payloads covering the grammar: verbs, params,
/// blank values, meta lines, raw bodies with embedded newlines.
std::vector<std::string> SeedRequestPayloads() {
  std::vector<std::string> payloads;
  {
    Request request;
    request.verb = "mine";
    request.params = {{"store", "g"},
                      {"gamma", "0.5"},
                      {"minsup", "0.01,0.001"},
                      {"deadline_ms", "250"},
                      {"cache", "off"}};
    payloads.push_back(EncodeRequest(request));
  }
  for (const char* verb : {"ping", "stats", "list", "shutdown"}) {
    Request request;
    request.verb = verb;
    payloads.push_back(EncodeRequest(request));
  }
  return payloads;
}

std::vector<std::string> SeedResponsePayloads() {
  std::vector<std::string> payloads;
  {
    Response response;
    response.ok = true;
    response.meta = {{"cache", "hit"},
                     {"patterns", "12"},
                     {"latency_ms", "3.125"}};
    response.body = "csv,header\nrow one\n\nrow after blank\n";
    payloads.push_back(EncodeResponse(response));
  }
  {
    Response response;
    response.ok = false;
    response.error = "deadline_exceeded: query deadline passed";
    payloads.push_back(EncodeResponse(response));
  }
  {
    Response response;
    response.ok = true;  // no meta, empty body
    payloads.push_back(EncodeResponse(response));
  }
  return payloads;
}

/// Applies a random batch of mutations: bit flips, byte overwrites,
/// truncation, duplication, and splices from a sibling payload.
std::string Mutate(const std::string& base,
                   const std::vector<std::string>& siblings, Rng* rng) {
  std::string mutated = base;
  const uint64_t edits = 1 + rng->Below(8);
  for (uint64_t e = 0; e < edits && !mutated.empty(); ++e) {
    switch (rng->Below(5)) {
      case 0: {  // bit flip
        const size_t at = rng->Below(mutated.size());
        mutated[at] = static_cast<char>(
            static_cast<uint8_t>(mutated[at]) ^
            (1u << rng->Below(8)));
        break;
      }
      case 1: {  // byte overwrite, control chars included
        const size_t at = rng->Below(mutated.size());
        mutated[at] = static_cast<char>(rng->Below(256));
        break;
      }
      case 2:  // truncate
        mutated.resize(rng->Below(mutated.size() + 1));
        break;
      case 3: {  // duplicate a slice in place
        const size_t from = rng->Below(mutated.size());
        const size_t len =
            rng->Below(std::min<uint64_t>(mutated.size() - from, 32) + 1);
        mutated.insert(rng->Below(mutated.size() + 1),
                       mutated.substr(from, len));
        break;
      }
      default: {  // splice a chunk of a sibling payload
        const std::string& donor =
            siblings[rng->Below(siblings.size())];
        if (donor.empty()) break;
        const size_t from = rng->Below(donor.size());
        const size_t len =
            rng->Below(std::min<uint64_t>(donor.size() - from, 48) + 1);
        mutated.insert(rng->Below(mutated.size() + 1),
                       donor.substr(from, len));
        break;
      }
    }
  }
  return mutated;
}

TEST(ProtocolFuzz, MutatedPayloadsDecodeToCleanStatusOrValue) {
  const auto iters = static_cast<uint64_t>(
      std::max<int64_t>(1, GetEnvInt("FLIPPER_FUZZ_ITERS", 10)));
  const auto master =
      static_cast<uint64_t>(GetEnvInt("FLIPPER_FUZZ_SEED", 1));
  const std::vector<std::string> requests = SeedRequestPayloads();
  const std::vector<std::string> responses = SeedResponsePayloads();
  // Each "iter" is a sizeable batch so the default CI setting still
  // pushes thousands of mutants through both decoders.
  const uint64_t mutants_per_iter = 400;
  for (uint64_t round = 0; round < iters; ++round) {
    Rng rng((master + round) * 0x9e3779b97f4a7c15ull + 17);
    SCOPED_TRACE("seed=" + std::to_string(master + round) +
                 " (repro: FLIPPER_FUZZ_SEED=" +
                 std::to_string(master + round) +
                 " FLIPPER_FUZZ_ITERS=1 ./protocol_fuzz_test)");
    for (uint64_t m = 0; m < mutants_per_iter; ++m) {
      const std::string request_mutant = Mutate(
          requests[rng.Below(requests.size())], responses, &rng);
      auto request = DecodeRequest(request_mutant);
      if (request.ok()) {
        // Whatever decoded must re-encode and decode to itself: the
        // codec stays total and idempotent on its own output.
        auto again = DecodeRequest(EncodeRequest(*request));
        ASSERT_TRUE(again.ok()) << again.status();
        EXPECT_EQ(again->verb, request->verb);
      }
      const std::string response_mutant = Mutate(
          responses[rng.Below(responses.size())], requests, &rng);
      auto response = DecodeResponse(response_mutant);
      if (response.ok()) {
        auto again = DecodeResponse(EncodeResponse(*response));
        ASSERT_TRUE(again.ok()) << again.status();
        EXPECT_EQ(again->ok, response->ok);
        EXPECT_EQ(again->body, response->body);
      }
    }
  }
}

#ifndef _WIN32

/// Writes `bytes` raw onto one end of a socketpair, optionally hangs
/// up, and returns ReadFrame's outcome at the other end.
Result<std::string> ReadFramedBytes(const std::string& bytes,
                                    bool hang_up) {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  EXPECT_EQ(::send(fds[0], bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  if (hang_up) ::close(fds[0]);
  FdStream stream(fds[1]);
  FrameIo io;
  io.idle_timeout_ms = 200;
  io.io_timeout_ms = 200;
  auto result = ReadFrame(&stream, io);
  if (!hang_up) ::close(fds[0]);
  ::close(fds[1]);
  return result;
}

TEST(ProtocolFuzz, TornAndOversizedFramesFailCleanly) {
  // A length prefix beyond the cap is rejected without allocating.
  std::string oversized(4, '\0');
  const uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(oversized.data(), &huge, 4);
  auto rejected = ReadFramedBytes(oversized, /*hang_up=*/false);
  ASSERT_FALSE(rejected.ok());

  // Truncated payload + hangup: a torn frame, not a clean EOF.
  const std::string payload = EncodeRequest([] {
    Request request;
    request.verb = "mine";
    request.params = {{"store", "g"}};
    return request;
  }());
  std::string frame(4, '\0');
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(frame.data(), &len, 4);
  frame += payload;
  for (size_t cut : {size_t{1}, size_t{3}, size_t{5},
                     frame.size() - 1}) {
    auto torn = ReadFramedBytes(frame.substr(0, cut), /*hang_up=*/true);
    ASSERT_FALSE(torn.ok()) << "cut at " << cut;
    EXPECT_EQ(torn.status().code(), StatusCode::kIoError)
        << "cut at " << cut;
  }
  // Hangup before any byte is the documented clean EOF.
  auto eof = ReadFramedBytes("", /*hang_up=*/true);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  // A stalled (not hung-up) torn frame trips the I/O deadline instead.
  auto stalled = ReadFramedBytes(frame.substr(0, 5), /*hang_up=*/false);
  ASSERT_FALSE(stalled.ok());
  EXPECT_EQ(stalled.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ProtocolFuzz, RandomGarbageFramesNeverWedgeTheReader) {
  const auto iters = static_cast<uint64_t>(
      std::max<int64_t>(1, GetEnvInt("FLIPPER_FUZZ_ITERS", 10)));
  const auto master =
      static_cast<uint64_t>(GetEnvInt("FLIPPER_FUZZ_SEED", 1));
  for (uint64_t round = 0; round < iters; ++round) {
    Rng rng((master + round) * 0x9e3779b97f4a7c15ull + 71);
    SCOPED_TRACE("seed=" + std::to_string(master + round));
    for (int g = 0; g < 24; ++g) {
      std::string garbage(rng.Below(64), '\0');
      for (char& c : garbage) {
        c = static_cast<char>(rng.Below(256));
      }
      // Either outcome — a decoded tiny frame or a clean error — is
      // fine; the call just must return promptly.
      auto result =
          ReadFramedBytes(garbage, /*hang_up=*/rng.Bernoulli(0.5));
      if (result.ok()) {
        (void)DecodeRequest(*result);
        (void)DecodeResponse(*result);
      }
    }
  }
}

#endif  // !_WIN32

}  // namespace
}  // namespace service
}  // namespace flipper
