// NaiveMiner-specific behaviour: per-level Apriori completeness,
// Table-4-style Pos/Neg accounting verified against hand counts on the
// paper's toy database, and baseline resource characteristics.

#include <gtest/gtest.h>

#include "core/flipper_miner.h"
#include "core/naive_miner.h"
#include "measures/measure.h"
#include "test_util.h"

namespace flipper {
namespace {

using testutil::Dataset;
using testutil::PaperToyDataset;

MiningConfig ToyConfig() {
  MiningConfig config;
  config.gamma = 0.6;
  config.epsilon = 0.35;
  config.min_support = {0.1, 0.1, 0.1};
  return config;
}

// Hand-counted level-1 labels of the toy database at gamma=0.6,
// epsilon=0.35: the only level-1 pair is {a,b} with Kulc ~0.826 -> one
// positive itemset at level 1.
TEST(NaiveMiner, PosNegCountsMatchHandComputation) {
  Dataset data = PaperToyDataset();
  auto result = NaiveMiner::Run(data.db, data.taxonomy, ToyConfig());
  ASSERT_TRUE(result.ok()) << result.status();

  // Recompute the expected counts by brute force over every level and
  // every itemset size, using the same definition (Definition 1).
  uint64_t expected_pos = 0;
  uint64_t expected_neg = 0;
  const MiningConfig config = ToyConfig();
  for (int h = 1; h <= data.taxonomy.height(); ++h) {
    TransactionDb level_db =
        data.db.Generalize(data.taxonomy.LevelMap(h));
    const std::vector<ItemId>& nodes = data.taxonomy.NodesAtLevel(h);
    const uint32_t min_count =
        config.MinCount(h, level_db.size());
    // All 2-, 3- and 4-itemsets over the level vocabulary (no toy
    // transaction holds more than 4 distinct items at any level).
    std::vector<Itemset> all;
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (size_t j = i + 1; j < nodes.size(); ++j) {
        all.push_back(Itemset::Pair(nodes[i], nodes[j]));
        for (size_t l = j + 1; l < nodes.size(); ++l) {
          Itemset s3 = Itemset::Pair(nodes[i], nodes[j]);
          s3.Insert(nodes[l]);
          all.push_back(s3);
          for (size_t m = l + 1; m < nodes.size(); ++m) {
            Itemset s4 = s3;
            s4.Insert(nodes[m]);
            all.push_back(s4);
          }
        }
      }
    }
    for (const Itemset& s : all) {
      const uint32_t sup = level_db.CountSupport(s);
      if (sup < min_count) continue;
      std::vector<uint32_t> item_sups;
      for (ItemId item : s) {
        item_sups.push_back(
            level_db.CountSupport(Itemset::Single(item)));
      }
      const double corr =
          Correlation(config.measure, sup, item_sups);
      if (corr >= config.gamma) ++expected_pos;
      if (corr <= config.epsilon) ++expected_neg;
    }
  }
  EXPECT_EQ(result->stats.num_positive, expected_pos);
  EXPECT_EQ(result->stats.num_negative, expected_neg);
  EXPECT_GT(expected_pos, 0u);
  EXPECT_GT(expected_neg, 0u);
}

TEST(NaiveMiner, KeepsMoreCandidateMemoryThanFlipper) {
  // The Figure-9(b) mechanism: the baseline retains every frequent
  // itemset of every level, Flipper only two rows.
  Dataset data = testutil::RandomDataset(2024, 5, 3, 3, 800, 7);
  MiningConfig config;
  config.gamma = 0.5;
  config.epsilon = 0.2;
  config.min_support = {0.005, 0.003, 0.002};
  auto naive = NaiveMiner::Run(data.db, data.taxonomy, config);
  auto flip = FlipperMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(flip.ok());
  EXPECT_GE(naive->stats.peak_candidate_bytes,
            flip->stats.peak_candidate_bytes);
}

TEST(NaiveMiner, ResourceGuard) {
  Dataset data = testutil::RandomDataset(7, 6, 3, 3, 500, 8);
  MiningConfig config;
  config.gamma = 0.5;
  config.epsilon = 0.2;
  config.min_support = {0.002, 0.002, 0.002};
  config.max_candidates_per_cell = 10;
  auto result = NaiveMiner::Run(data.db, data.taxonomy, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(NaiveMiner, PatternsRequireDistinctRoots) {
  Dataset data = testutil::RandomDataset(88);
  MiningConfig config;
  config.gamma = 0.45;
  config.epsilon = 0.25;
  config.min_support = {0.02, 0.01, 0.01};
  auto result = NaiveMiner::Run(data.db, data.taxonomy, config);
  ASSERT_TRUE(result.ok());
  for (const FlippingPattern& p : result->patterns) {
    Itemset roots = p.leaf_itemset.Map(
        [&](ItemId item) { return data.taxonomy.RootOf(item); });
    EXPECT_EQ(roots.size(), p.leaf_itemset.size());
    EXPECT_TRUE(p.IsValidFlip());
  }
}

}  // namespace
}  // namespace flipper
