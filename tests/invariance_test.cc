// Invariance properties of the miner: the flipping-pattern set must
// not depend on transaction order, and simulator-planted patterns must
// survive dataset rescaling (the simulators' correlation structure is
// scale-free by construction).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/flipper_miner.h"
#include "datagen/census_sim.h"
#include "datagen/groceries_sim.h"
#include "test_util.h"

namespace flipper {
namespace {

TEST(Invariance, TransactionOrderDoesNotMatter) {
  testutil::Dataset data = testutil::RandomDataset(321);
  MiningConfig config;
  config.gamma = 0.5;
  config.epsilon = 0.25;
  config.min_support = {0.02, 0.01, 0.01};

  // Rebuild the database with the transactions in reverse order.
  TransactionDb reversed;
  for (TxnId t = data.db.size(); t-- > 0;) {
    auto txn = data.db.Get(t);
    reversed.Add(std::vector<ItemId>(txn.begin(), txn.end()));
  }

  auto original = FlipperMiner::Run(data.db, data.taxonomy, config);
  auto shuffled = FlipperMiner::Run(reversed, data.taxonomy, config);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(shuffled.ok());
  EXPECT_TRUE(SamePatterns(original->patterns, shuffled->patterns));
}

TEST(Invariance, DuplicatingTheDatabasePreservesPatternLabels) {
  // Doubling every transaction doubles all supports and leaves every
  // relative threshold and every null-invariant correlation unchanged.
  testutil::Dataset data = testutil::RandomDataset(654);
  MiningConfig config;
  config.gamma = 0.5;
  config.epsilon = 0.25;
  config.min_support = {0.02, 0.01, 0.01};

  TransactionDb doubled;
  for (int round = 0; round < 2; ++round) {
    for (TxnId t = 0; t < data.db.size(); ++t) {
      auto txn = data.db.Get(t);
      doubled.Add(std::vector<ItemId>(txn.begin(), txn.end()));
    }
  }
  auto base = FlipperMiner::Run(data.db, data.taxonomy, config);
  auto twice = FlipperMiner::Run(doubled, data.taxonomy, config);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(twice.ok());
  ASSERT_EQ(base->patterns.size(), twice->patterns.size());
  // Same leaf itemsets and labels; supports exactly doubled.
  for (size_t i = 0; i < base->patterns.size(); ++i) {
    EXPECT_EQ(base->patterns[i].leaf_itemset,
              twice->patterns[i].leaf_itemset);
    for (size_t h = 0; h < base->patterns[i].chain.size(); ++h) {
      EXPECT_EQ(base->patterns[i].chain[h].label,
                twice->patterns[i].chain[h].label);
      EXPECT_EQ(2 * base->patterns[i].chain[h].support,
                twice->patterns[i].chain[h].support);
      EXPECT_NEAR(base->patterns[i].chain[h].corr,
                  twice->patterns[i].chain[h].corr, 1e-12);
    }
  }
}

class SimScaleSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SimScaleSweep, GroceriesPlantedFlipsSurviveRescaling) {
  GroceriesParams params;
  params.num_transactions = GetParam();
  auto data = GenerateGroceries(params);
  ASSERT_TRUE(data.ok()) << data.status();
  auto result =
      FlipperMiner::Run(data->db, data->taxonomy, data->paper_config);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const PlantedFlip& plant : data->planted) {
    Itemset target;
    for (const std::string& name : plant.leaf_names) {
      auto id = data->dict.Find(name);
      ASSERT_TRUE(id.ok()) << name;
      target.Insert(*id);
    }
    bool found = false;
    for (const FlippingPattern& p : result->patterns) {
      if (p.leaf_itemset == target) found = true;
    }
    EXPECT_TRUE(found) << "N=" << GetParam() << ": " << plant.description;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, SimScaleSweep,
                         ::testing::Values(4'900u, 9'800u, 19'600u,
                                           39'200u));

TEST(Invariance, CensusSeedSweepKeepsPlantedFlips) {
  for (uint64_t seed : {13ull, 99ull, 12345ull}) {
    CensusParams params;
    params.num_records = 16'000;
    params.seed = seed;
    auto data = GenerateCensus(params);
    ASSERT_TRUE(data.ok());
    auto result =
        FlipperMiner::Run(data->db, data->taxonomy, data->paper_config);
    ASSERT_TRUE(result.ok()) << result.status();
    int recovered = 0;
    for (const PlantedFlip& plant : data->planted) {
      Itemset target;
      for (const std::string& name : plant.leaf_names) {
        target.Insert(*data->dict.Find(name));
      }
      for (const FlippingPattern& p : result->patterns) {
        if (p.leaf_itemset == target) ++recovered;
      }
    }
    EXPECT_EQ(recovered, 2) << "seed " << seed;
  }
}

}  // namespace
}  // namespace flipper
