// Unit tests for the inline Itemset container.

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.h"
#include "data/itemset.h"

namespace flipper {
namespace {

TEST(Itemset, InsertKeepsSortedUnique) {
  Itemset s;
  s.Insert(5);
  s.Insert(2);
  s.Insert(9);
  s.Insert(5);  // duplicate
  ASSERT_EQ(s.size(), 3);
  EXPECT_EQ(s[0], 2u);
  EXPECT_EQ(s[1], 5u);
  EXPECT_EQ(s[2], 9u);
  EXPECT_EQ(s.ToString(), "{2, 5, 9}");
}

TEST(Itemset, InitializerListCollapsesDuplicates) {
  Itemset s{7, 3, 7, 1};
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.front(), 1u);
  EXPECT_EQ(s.back(), 7u);
}

TEST(Itemset, ContainsAndContainsAll) {
  Itemset s{1, 3, 5, 7};
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_TRUE(s.ContainsAll(Itemset{3, 7}));
  EXPECT_FALSE(s.ContainsAll(Itemset{3, 4}));
  EXPECT_TRUE(s.ContainsAll(Itemset{}));
}

TEST(Itemset, WithoutIndexAndWithItem) {
  Itemset s{10, 20, 30};
  EXPECT_EQ(s.WithoutIndex(1), (Itemset{10, 30}));
  EXPECT_EQ(s.WithItem(25), (Itemset{10, 20, 25, 30}));
}

TEST(Itemset, PrefixJoin) {
  auto joined =
      Itemset::PrefixJoin(Itemset{1, 2, 3}, Itemset{1, 2, 5});
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(*joined, (Itemset{1, 2, 3, 5}));

  // Divergent prefix.
  EXPECT_FALSE(
      Itemset::PrefixJoin(Itemset{1, 2, 3}, Itemset{1, 4, 5}).has_value());
  // Wrong order of last elements.
  EXPECT_FALSE(
      Itemset::PrefixJoin(Itemset{1, 2, 5}, Itemset{1, 2, 3}).has_value());
  // Size mismatch.
  EXPECT_FALSE(
      Itemset::PrefixJoin(Itemset{1, 2}, Itemset{1, 2, 3}).has_value());
}

TEST(Itemset, MapCollapses) {
  Itemset s{10, 11, 20};
  // Map 10,11 to the same parent.
  Itemset mapped = s.Map([](ItemId i) { return i / 10; });
  EXPECT_EQ(mapped, (Itemset{1, 2}));
}

TEST(Itemset, OrderingIsLexicographic) {
  EXPECT_LT((Itemset{1, 2}), (Itemset{1, 3}));
  EXPECT_LT((Itemset{1, 2}), (Itemset{1, 2, 3}));
  EXPECT_FALSE(Itemset{2} < (Itemset{1, 9}));
}

TEST(Itemset, HashDistinguishesAndAgrees) {
  Rng rng(42);
  std::unordered_set<Itemset, ItemsetHash> seen;
  int collisions_with_equal = 0;
  for (int i = 0; i < 2000; ++i) {
    Itemset s;
    const int k = 1 + static_cast<int>(rng.Below(5));
    for (int j = 0; j < k; ++j) {
      s.Insert(static_cast<ItemId>(rng.Below(50)));
    }
    Itemset copy = s;
    EXPECT_EQ(ItemsetHash()(s), ItemsetHash()(copy));
    if (seen.count(s) > 0) ++collisions_with_equal;
    seen.insert(s);
  }
  EXPECT_GT(seen.size(), 100u);
}

TEST(Itemset, EmptyBehaviour) {
  Itemset s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.ToString(), "{}");
  EXPECT_FALSE(s.Contains(0));
}

}  // namespace
}  // namespace flipper
