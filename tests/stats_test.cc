// MiningStats: AddCell aggregation of every counter, ToString label
// completeness (the --stats surface the CLI prints), and the
// flipper_cli `mine --stats` end-to-end output.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "core/stats.h"
#include "data/db_io.h"
#include "taxonomy/taxonomy_io.h"
#include "test_util.h"

namespace flipper {
namespace {

TEST(MiningStats, AddCellAggregatesTotals) {
  MiningStats stats;
  CellStats a;
  a.h = 1;
  a.k = 2;
  a.generated = 100;
  a.counted = 80;
  a.frequent = 40;
  a.labeled = 10;
  a.alive = 5;
  a.seconds = 0.25;
  CellStats b;
  b.h = 2;
  b.k = 2;
  b.generated = 50;
  b.counted = 30;
  b.seconds = 0.75;
  stats.AddCell(a);
  stats.AddCell(b);

  ASSERT_EQ(stats.cells.size(), 2u);
  EXPECT_EQ(stats.cells[0].h, 1);
  EXPECT_EQ(stats.cells[1].k, 2);
  EXPECT_EQ(stats.total_generated, 150u);
  EXPECT_EQ(stats.total_counted, 110u);
  EXPECT_DOUBLE_EQ(stats.total_seconds, 1.0);
}

TEST(MiningStats, ToStringCoversEveryCounter) {
  MiningStats stats;
  CellStats cell;
  cell.generated = 1234;
  cell.counted = 987;
  cell.seconds = 1.5;
  stats.AddCell(cell);
  stats.db_scans = 42;
  stats.scan_cell_scans = 7;
  stats.segments_skipped = 99;
  stats.txns_prefiltered = 12345;
  stats.num_positive = 11;
  stats.num_negative = 22;
  stats.peak_candidate_bytes = 4096;
  stats.tpg_stopped_at = 3;
  stats.sibp_banned_items = 5;

  const std::string s = stats.ToString();
  // Every counter the observability layer exports must be visible in
  // the human-readable summary too (satellite of the same contract).
  for (const char* label :
       {"cells computed:", "candidates gen:", "candidates cnt:",
        "db scans:", "scan-cell:", "segments skipped:",
        "txns prefiltered:", "positive itemsets:",
        "negative itemsets:", "peak cand. memory:",
        "tpg stop column:", "sibp banned items:", "total time:"}) {
    EXPECT_NE(s.find(label), std::string::npos)
        << "missing label '" << label << "' in:\n"
        << s;
  }
  // Values land next to their labels.
  EXPECT_NE(s.find("1,234"), std::string::npos) << s;  // generated
  EXPECT_NE(s.find("12,345"), std::string::npos) << s;  // prefiltered
  EXPECT_NE(s.find("99"), std::string::npos) << s;  // segments skipped
}

TEST(MiningStats, TpgColumnPrintsDashWhenNeverFired) {
  MiningStats stats;
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("tpg stop column:   -"), std::string::npos) << s;
}

/// Drives RunFlipperCli as a subprocess would, capturing both streams.
int RunCli(const std::vector<std::string>& cli_args,
           std::string* out_text, std::string* err_text) {
  std::vector<const char*> argv;
  argv.push_back("flipper_cli");
  for (const std::string& arg : cli_args) argv.push_back(arg.c_str());
  std::ostringstream out;
  std::ostringstream err;
  const int rc = RunFlipperCli(static_cast<int>(argv.size()),
                               argv.data(), out, err);
  *out_text = out.str();
  *err_text = err.str();
  return rc;
}

TEST(MiningStats, CliMineStatsPrintsTheFullSummary) {
  testutil::Dataset data = testutil::PaperToyDataset();
  const std::string basket = ::testing::TempDir() + "stats_cli.basket";
  const std::string taxonomy =
      ::testing::TempDir() + "stats_cli.taxonomy";
  ASSERT_TRUE(WriteTaxonomyFile(data.taxonomy, data.dict, taxonomy).ok());
  ASSERT_TRUE(WriteBasketFile(data.db, data.dict, basket).ok());

  std::string out;
  std::string err;
  ASSERT_EQ(RunCli({"mine", basket, taxonomy, "--gamma=0.6",
                    "--epsilon=0.35", "--minsup=0.1,0.1,0.1",
                    "--format=csv", "--stats"},
                   &out, &err),
            0)
      << err;
  // The one flipping pattern of the paper's toy example still mines.
  EXPECT_NE(out.find("a11|b11"), std::string::npos) << out;
  // --stats prints the complete summary to stderr.
  for (const char* label :
       {"cells computed:", "candidates gen:", "candidates cnt:",
        "db scans:", "scan-cell:", "segments skipped:",
        "txns prefiltered:", "positive itemsets:",
        "negative itemsets:", "peak cand. memory:",
        "tpg stop column:", "sibp banned items:", "total time:"}) {
    EXPECT_NE(err.find(label), std::string::npos)
        << "missing label '" << label << "' in stderr:\n"
        << err;
  }
}

}  // namespace
}  // namespace flipper
